package service

import (
	"math/rand"
	"time"

	"repro/internal/budget"
	"repro/internal/dqbf"
	"repro/internal/problem"
	"repro/internal/trace"
)

// RetryPolicy bounds how hard the service fights transient failures before
// surfacing an Error verdict.
type RetryPolicy struct {
	// MaxAttempts is the number of runs per engine in the fallback chain,
	// including the first (default 2 = one retry per engine).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it (default 5ms). Every delay gets ±50% uniform jitter so
	// retry storms from concurrent workers decorrelate.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 250ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 2
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// backoff returns the jittered exponential delay before retry number n
// (0-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay << uint(n)
	if d <= 0 || d > p.MaxDelay { // <= 0 guards shift overflow
		d = p.MaxDelay
	}
	// ±50% jitter.
	return d/2 + time.Duration(rand.Int63n(int64(d)+1))
}

// FallbackChain returns the engines tried for a job that requested eng, in
// order: the requested engine first, then the portfolio (which still
// includes the requested engine — a transiently failing engine may well win
// its rematch), then the iDQ baseline alone; the baseline itself is last,
// with nothing to fall back to.
func FallbackChain(eng Engine) []Engine {
	switch eng {
	case EngineHQS, EngineDefex, EngineExpand:
		return []Engine{eng, EnginePortfolio, EngineIDQ}
	case EnginePortfolio, "":
		return []Engine{EnginePortfolio, EngineIDQ}
	default:
		return []Engine{EngineIDQ}
	}
}

// attemptDisposition classifies one engine outcome for the retry driver.
type attemptDisposition int

const (
	// dispositionFinal: a definitive verdict, or the budget is exhausted —
	// report as-is.
	dispositionFinal attemptDisposition = iota
	// dispositionRetry: a transient failure (panic, oracle error, or a
	// spurious Unknown while the budget still has headroom) — retry the same
	// engine after a backoff.
	dispositionRetry
	// dispositionFallback: this engine cannot answer within its own limits
	// (e.g. an AIG memout) although the job budget still has headroom —
	// skip straight to the next engine in the chain.
	dispositionFallback
)

func classify(out Outcome, b *budget.Budget) attemptDisposition {
	switch out.Verdict {
	case VerdictSat, VerdictUnsat:
		return dispositionFinal
	case VerdictError:
		if b.Stopped() {
			return dispositionFinal
		}
		return dispositionRetry
	}
	if b.Stopped() {
		return dispositionFinal
	}
	switch out.Reason {
	case "memout", "timeout":
		// An engine-local resource limit with job budget to spare: retrying
		// the same engine deterministically hits the same wall, but another
		// engine may not (iDQ has no AIG node cap, HQS no instantiation cap).
		return dispositionFallback
	default:
		// Unknown without a budget cause: the engine gave up for no reason
		// the budget can explain (e.g. an injected spurious Unknown).
		return dispositionRetry
	}
}

// Solve decides f with retry and engine fallback: each engine in
// FallbackChain(eng) is attempted up to pol.MaxAttempts times with
// exponential backoff and jitter between attempts, transient failures
// (panics, oracle errors, unexplained Unknowns) trigger retries, and
// engine-local resource exhaustion falls through to the next engine. The
// returned outcome carries the total attempt count and fallback depth. This
// is the entry point the scheduler uses; Run is the single-attempt variant.
func Solve(f *dqbf.Formula, eng Engine, b *budget.Budget, pol RetryPolicy) Outcome {
	return solveRetry(problem.FromDQBF(f), eng, b, pol, nil, nil)
}

// solveRetry is Solve with an observer invoked after every attempt (used by
// the scheduler to meter retries, fallbacks, and contained panics without
// losing intermediate outcomes) and a per-pass trace sink threaded into
// every HQS attempt, retries and fallback runs included (so a job's trace
// shows the full attempt history, not just the final run).
func solveRetry(p *problem.Problem, eng Engine, b *budget.Budget, pol RetryPolicy, observe func(Outcome), sink trace.Sink) Outcome {
	pol = pol.withDefaults()
	if _, err := ParseEngine(string(eng)); err != nil {
		return Outcome{Verdict: VerdictError, Reason: "error", Error: err.Error(), Attempts: 0}
	}
	chain := FallbackChain(eng)
	attempts := 0
	var last Outcome
	for ci, e := range chain {
		for a := 0; a < pol.MaxAttempts; a++ {
			if b.Stopped() && attempts > 0 {
				// Budget gone between attempts: report the stop, preserving
				// the failure detail of the last attempt for the record.
				last.Attempts = attempts
				last.Fallbacks = ci
				return last
			}
			attempts++
			out := runGuarded(p, e, b, sink)
			out.Attempts = attempts
			out.Fallbacks = ci
			out.Conflicts = b.ConflictsUsed()
			out.Decisions = b.DecisionsUsed()
			if observe != nil {
				observe(out)
			}
			last = out
			switch classify(out, b) {
			case dispositionFinal:
				return out
			case dispositionFallback:
				a = pol.MaxAttempts // break attempt loop, next engine
			case dispositionRetry:
				if a+1 < pol.MaxAttempts || ci+1 < len(chain) {
					sleepBudget(b, pol.backoff(a))
				}
			}
		}
	}
	return last
}

// sleepBudget sleeps for d but returns early when the budget stops, so a
// cancellation is not delayed by a backoff.
func sleepBudget(b *budget.Budget, d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-b.Done():
	}
}
