package service

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/dqbf"
)

// TestPanicBecomesErrorVerdict: a SAT-oracle panic on every call must not
// escape Run — it becomes a VerdictError outcome with the stack preserved.
func TestPanicBecomesErrorVerdict(t *testing.T) {
	withFaults(t, "sat.solve:panic", 1)
	out, err := Run(unsatExample(), EngineIDQ, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Verdict != VerdictError {
		t.Fatalf("verdict = %v, want ERROR", out.Verdict)
	}
	if out.Error == "" || !strings.Contains(out.Error, "panicked") {
		t.Fatalf("error text = %q, want a panic message", out.Error)
	}
	if !strings.Contains(out.PanicStack, "goroutine") {
		t.Fatalf("panic stack not captured: %q", out.PanicStack)
	}
}

// TestRetryRecoversFromTransientFault: a fault that fires exactly once must
// cost one retry, not the verdict.
func TestRetryRecoversFromTransientFault(t *testing.T) {
	withFaults(t, "sat.solve:panic:times=1", 1)
	out := Solve(unsatExample(), EngineIDQ, budget.New(budget.Limits{}), RetryPolicy{BaseDelay: time.Millisecond})
	if out.Verdict != VerdictUnsat {
		t.Fatalf("verdict = %v (%s: %s), want UNSAT after retry", out.Verdict, out.Reason, out.Error)
	}
	if out.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one failure, one success)", out.Attempts)
	}
	if out.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0 (same engine recovered)", out.Fallbacks)
	}
}

// TestSpuriousUnknownIsRetried: an injected spurious Unknown with budget to
// spare must be retried rather than reported.
func TestSpuriousUnknownIsRetried(t *testing.T) {
	withFaults(t, "sat.solve:unknown:times=1", 1)
	out := Solve(unsatExample(), EngineIDQ, budget.New(budget.Limits{}), RetryPolicy{BaseDelay: time.Millisecond})
	if out.Verdict != VerdictUnsat {
		t.Fatalf("verdict = %v (%s), want UNSAT after retry", out.Verdict, out.Reason)
	}
	if out.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2", out.Attempts)
	}
}

// xorLinkedDQBF is ∀x1∀x2 ∃y1(x1) ∃y2(x2) with matrix (y1⊕y2) ↔ (x1⊕x2):
// satisfiable (y1=x1, y2=x2), but — unlike the paper examples, which
// preprocessing decides outright — its 4-literal XOR clauses survive
// preprocessing, so HQS must run elimination-set selection (the dependency
// sets form a binary cycle, so the MaxSAT oracle runs) and finish in the QBF
// back end.
func xorLinkedDQBF() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	// Block every assignment violating (y1 xor y2) <-> (x1 xor x2).
	for a := 0; a < 16; a++ {
		x1, x2, y1, y2 := a&1, (a>>1)&1, (a>>2)&1, (a>>3)&1
		if (y1 ^ y2) != (x1 ^ x2) {
			lit := func(v, val int) int {
				if val == 1 {
					return -v
				}
				return v
			}
			f.Matrix.AddDimacsClause(lit(1, x1), lit(2, x2), lit(3, y1), lit(4, y2))
		}
	}
	return f
}

// TestFallbackChainReachesBaseline: when the requested engine fails every
// attempt, the chain must fall through and another engine must answer. The
// MaxSAT elimination-set oracle is only used by HQS, so poisoning it
// permanently kills HQS on a cyclic instance while leaving iDQ untouched.
func TestFallbackChainReachesBaseline(t *testing.T) {
	withFaults(t, "maxsat.solve:error", 1)
	out := Solve(xorLinkedDQBF(), EngineHQS, budget.New(budget.Limits{}), RetryPolicy{BaseDelay: time.Millisecond})
	if out.Verdict != VerdictSat {
		t.Fatalf("verdict = %v (%s: %s), want SAT via fallback", out.Verdict, out.Reason, out.Error)
	}
	if out.Fallbacks == 0 {
		t.Fatal("fallbacks = 0, want > 0 (hqs cannot answer with a poisoned maxsat oracle)")
	}
	if out.Engine == EngineHQS {
		t.Fatalf("winning engine = %s, but its oracle is poisoned", out.Engine)
	}
}

// TestFallbackChainShape pins the documented chain per requested engine.
func TestFallbackChainShape(t *testing.T) {
	cases := []struct {
		eng  Engine
		want []Engine
	}{
		{EngineHQS, []Engine{EngineHQS, EnginePortfolio, EngineIDQ}},
		{EngineDefex, []Engine{EngineDefex, EnginePortfolio, EngineIDQ}},
		{EngineExpand, []Engine{EngineExpand, EnginePortfolio, EngineIDQ}},
		{EnginePortfolio, []Engine{EnginePortfolio, EngineIDQ}},
		{"", []Engine{EnginePortfolio, EngineIDQ}},
		{EngineIDQ, []Engine{EngineIDQ}},
	}
	for _, c := range cases {
		got := FallbackChain(c.eng)
		if len(got) != len(c.want) {
			t.Fatalf("FallbackChain(%q) = %v, want %v", c.eng, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("FallbackChain(%q) = %v, want %v", c.eng, got, c.want)
			}
		}
	}
}

// TestCertificateFailureIsError: a SAT verdict whose Skolem certificate
// fails verification must surface as ERROR, never as a silent SAT.
func TestCertificateFailureIsError(t *testing.T) {
	withFaults(t, "service.certify:error", 1)
	out, err := Run(paperExample1(), EngineIDQ, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Verdict != VerdictError {
		t.Fatalf("verdict = %v, want ERROR on certificate rejection", out.Verdict)
	}
	if !strings.Contains(out.Error, "certificate") {
		t.Fatalf("error text = %q, want certificate rejection", out.Error)
	}
}

// TestSchedulerMetersRetriesAndErrors checks the per-job accounting the
// scheduler exports: injected dispatch errors must show up as Errors, and
// transient engine faults as Retries, with every job still terminal.
func TestSchedulerMetersRetriesAndErrors(t *testing.T) {
	withFaults(t, "sched.dispatch:error:every=2", 3)
	s := NewScheduler(Config{
		Workers:        1,
		DefaultTimeout: 5 * time.Second,
		CacheSize:      -1, // every job must really dispatch
		Retry:          RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond},
	})
	defer drainNow(t, s)

	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(unsatExample(), EngineIDQ, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	st := s.Stats()
	if st.Errors != 3 {
		t.Fatalf("stats.Errors = %d, want 3 (dispatch fault fires every 2nd job)", st.Errors)
	}
	if st.Solved != 3 {
		t.Fatalf("stats.Solved = %d, want 3", st.Solved)
	}
	for _, j := range jobs {
		out := j.Outcome()
		if out.Verdict == VerdictError && !strings.Contains(out.Error, "dispatch failed") {
			t.Fatalf("error job has unexpected error text %q", out.Error)
		}
	}
}

// TestVerdictErrorJSONRoundTrip extends the verdict JSON coverage to the new
// ERROR verdict and the failure fields of Outcome.
func TestVerdictErrorJSONRoundTrip(t *testing.T) {
	out := Outcome{
		Verdict:    VerdictError,
		Engine:     EngineHQS,
		Reason:     "error",
		Error:      "engine hqs panicked: boom",
		PanicStack: "goroutine 1 [running]:\n...",
		Attempts:   4,
		Fallbacks:  2,
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"verdict":"ERROR"`) {
		t.Fatalf("marshalled outcome = %s", data)
	}
	var back Outcome
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Verdict != VerdictError || back.Error != out.Error || back.Attempts != 4 || back.Fallbacks != 2 {
		t.Fatalf("round trip mangled outcome: %+v", back)
	}
}
