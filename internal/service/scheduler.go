package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/cert"
	"repro/internal/dqbf"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/problem"
	"repro/internal/store"
	"repro/internal/trace"
)

// Errors returned by Submit and Cancel.
var (
	// ErrQueueFull means the bounded job queue has no free slot.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining means the scheduler no longer accepts jobs.
	ErrDraining = errors.New("service: scheduler draining")
	// ErrNoSuchJob means the job ID is unknown (or already evicted).
	ErrNoSuchJob = errors.New("service: no such job")
)

// Config sizes the scheduler.
type Config struct {
	// Workers is the number of concurrent solver workers (default 2).
	Workers int
	// QueueCap bounds the number of queued-but-not-running jobs (default 64).
	QueueCap int
	// CacheSize bounds the LRU result cache (default 256; 0 keeps the
	// default, negative disables caching).
	CacheSize int
	// HistorySize bounds how many finished jobs stay queryable before the
	// oldest are evicted (default 512).
	HistorySize int
	// DefaultEngine is used when a job names none (default portfolio).
	DefaultEngine Engine
	// DefaultTimeout applies when a job sets none; 0 means unlimited.
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-job timeouts; 0 means no clamp.
	MaxTimeout time.Duration
	// Retry is the transient-failure policy applied to every job (zero
	// values take the RetryPolicy defaults).
	Retry RetryPolicy
	// TraceEvents bounds the per-job pass-trace ring (default 1024 events;
	// negative disables per-job tracing). The trace stays queryable with the
	// job's history entry.
	TraceEvents int
	// Store, when non-nil, is the persistent second cache tier: memory-cache
	// misses consult it before solving, definitive verdicts are written back,
	// and every running job is journaled so a killed daemon can report what
	// was in flight. SAT entries served from disk have their Skolem
	// certificate re-verified first; rejects are quarantined and re-solved.
	// The scheduler does not close the store — its opener does.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.HistorySize <= 0 {
		c.HistorySize = 512
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = EnginePortfolio
	}
	if c.TraceEvents == 0 {
		c.TraceEvents = 1024
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Limits are the per-job resource bounds accepted by Submit.
type Limits struct {
	// Timeout bounds wall-clock solve time; 0 uses the scheduler default.
	Timeout time.Duration
	// Conflicts and Decisions cap the CDCL meters; 0 means unlimited.
	Conflicts int64
	Decisions int64
	// Nodes caps the AIG size for the HQS engine; 0 keeps the engine default.
	Nodes int
}

// JobState is the lifecycle phase of a job.
type JobState string

const (
	// StateQueued means the job waits for a worker.
	StateQueued JobState = "queued"
	// StateRunning means a worker is solving the job.
	StateRunning JobState = "running"
	// StateDone means the job finished (its Outcome is final). Done is the
	// only terminal state; the outcome's verdict distinguishes solved,
	// budget-stopped (Unknown), and failed (Error) jobs.
	StateDone JobState = "done"
)

// JobInfo is a point-in-time snapshot of a job, shaped for JSON.
type JobInfo struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Engine Engine   `json:"engine"`
	// Format and Kind record the ingested problem's input format ("dqdimacs",
	// "qdimacs", "aiger", "bench") and quantifier kind ("dqbf", "qbf").
	Format string `json:"format,omitempty"`
	Kind   string `json:"kind,omitempty"`
	// QueueWaitMS is the time between submission and a worker picking the
	// job up (grows while queued).
	QueueWaitMS int64 `json:"queue_wait_ms"`
	// SolveTimeMS is the time a worker has spent on the job (grows while
	// running).
	SolveTimeMS int64    `json:"solve_time_ms"`
	Outcome     *Outcome `json:"outcome,omitempty"`
}

// Job is one scheduled solve.
type Job struct {
	id  string
	p   *problem.Problem
	key string
	eng Engine
	bud *budget.Budget
	// journaled is set once the persistent store has a start record for this
	// job, so finishJob knows whether a matching done record is owed. Only
	// the owning worker and its finisher touch it (happens-before via the
	// queue hand-off and the finish path).
	journaled bool
	// idemKey is the caller-supplied idempotency key ("" when none), kept so
	// history eviction can drop the key's registration with the job.
	idemKey string
	// trc records the per-pass pipeline trace of every engine attempt; nil
	// when the scheduler's TraceEvents config disables tracing.
	trc *trace.Recorder

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	outcome   Outcome

	done chan struct{} // closed when the job reaches StateDone
}

// ID returns the scheduler-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Outcome returns the final outcome; valid only after Done is closed.
func (j *Job) Outcome() Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome
}

// Trace returns the job's per-pass pipeline trace so far (one trace.Event
// per executed pass across every engine attempt) and how many events were
// dropped by the ring bound. It returns (nil, 0) when tracing is disabled
// or the job never ran an HQS pipeline (cache hits, iDQ-only jobs).
func (j *Job) Trace() ([]trace.Event, int) {
	if j.trc == nil {
		return nil, 0
	}
	return j.trc.Events(), j.trc.Dropped()
}

// Info returns a snapshot of the job's state and timings.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{ID: j.id, State: j.state, Engine: j.eng}
	if j.p != nil {
		info.Format = string(j.p.Format)
		info.Kind = j.p.Kind.String()
	}
	switch j.state {
	case StateQueued:
		info.QueueWaitMS = time.Since(j.submitted).Milliseconds()
	case StateRunning:
		info.QueueWaitMS = j.started.Sub(j.submitted).Milliseconds()
		info.SolveTimeMS = time.Since(j.started).Milliseconds()
	case StateDone:
		info.QueueWaitMS = j.started.Sub(j.submitted).Milliseconds()
		info.SolveTimeMS = j.finished.Sub(j.started).Milliseconds()
		out := j.outcome
		info.Outcome = &out
	}
	return info
}

// finish moves the job to StateDone exactly once; it reports whether this
// call performed the transition, so racing finishers (a worker and a drain
// flush, or a panic recovery after a completed hand-off) cannot double-count
// stats or double-close the done channel.
func (j *Job) finish(out Outcome) bool {
	if !j.beginFinish(out) {
		return false
	}
	close(j.done)
	return true
}

// beginFinish performs the exactly-once state transition of finish but
// leaves the done channel open, so the scheduler can persist the outcome
// durably before any waiter can observe it. The winner MUST close j.done.
func (j *Job) beginFinish(out Outcome) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone {
		return false
	}
	if j.started.IsZero() {
		// Finished without ever running (cache hit or drain flush).
		j.started = j.submitted
	}
	j.state = StateDone
	j.finished = time.Now()
	j.outcome = out
	return true
}

// Stats are scheduler-wide counters, shaped for JSON.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Solved    int64 `json:"solved"`
	Unknown   int64 `json:"unknown"`
	Cancelled int64 `json:"cancelled"`
	// Errors counts jobs that finished with VerdictError after retries and
	// fallbacks were exhausted.
	Errors int64 `json:"errors"`
	// Retries counts engine re-runs beyond each job's first attempt
	// (fallback attempts included).
	Retries int64 `json:"retries"`
	// Fallbacks is the summed fallback depth of finished jobs (how many
	// chain steps past the requested engine were needed).
	Fallbacks int64 `json:"fallbacks"`
	// Panics counts engine or worker panics that were contained.
	Panics    int64 `json:"panics"`
	CacheHits int64 `json:"cache_hits"`
	// StoreHits counts submissions answered from the persistent disk tier
	// (certificates re-verified before serving).
	StoreHits int64 `json:"store_hits"`
	// IdemHits counts submissions deduplicated onto an existing job by an
	// idempotency key — retried coordinator forwards land here instead of
	// double-counting as submissions and completions.
	IdemHits int64 `json:"idem_hits"`
	Rejected int64 `json:"rejected"`
	// HistoryEvicted counts finished jobs dropped from the bounded job
	// history; HistoryLen is its current size.
	HistoryEvicted int64 `json:"history_evicted"`
	HistoryLen     int   `json:"history_len"`
	Queued         int   `json:"queued"`
	Running        int   `json:"running"`
	CacheLen       int   `json:"cache_len"`
	Workers        int   `json:"workers"`
	// Oracle counters aggregate over every persistent incremental SAT
	// oracle created in this process (one pool per pipeline run), counted
	// at the oracle layer rather than per job so cache hits and fallbacks
	// don't skew them.
	OracleQueries     int64 `json:"oracle_queries"`
	OracleIncremental int64 `json:"oracle_incremental"`
	OracleRebuilds    int64 `json:"oracle_rebuilds"`
	// Engines breaks attempts and definitive verdicts down per engine
	// (process-wide, like the oracle counters): in portfolio mode the winning
	// arm is credited, so the table answers which engine actually produces
	// the verdicts.
	Engines map[Engine]EngineCounters `json:"engines"`
	// Store holds the persistent tier's own counters (hits, misses, corrupt,
	// quarantined, io_errors, …); nil when the daemon runs without -store.
	Store *store.Stats `json:"store,omitempty"`
}

// Scheduler runs submitted jobs on a bounded worker pool.
type Scheduler struct {
	cfg   Config
	cache *resultCache
	store *store.Store // nil without -store; second cache tier below the LRU

	mu       sync.Mutex
	queue    chan *Job
	jobs     map[string]*Job
	idem     map[string]string // idempotency key -> job ID, for deduplicated resubmits
	doneIDs  []string          // finished jobs in completion order, for history eviction
	draining bool
	nextID   int64

	wg      sync.WaitGroup
	running atomic.Int64

	submitted      atomic.Int64
	completed      atomic.Int64
	solved         atomic.Int64
	unknown        atomic.Int64
	cancelled      atomic.Int64
	errored        atomic.Int64
	retries        atomic.Int64
	fallbacks      atomic.Int64
	panics         atomic.Int64
	cacheHits      atomic.Int64
	storeHits      atomic.Int64
	idemHits       atomic.Int64
	rejected       atomic.Int64
	historyEvicted atomic.Int64
}

// NewScheduler starts a scheduler with cfg (zero values take defaults).
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheSize),
		store: cfg.Store,
		queue: make(chan *Job, cfg.QueueCap),
		jobs:  make(map[string]*Job),
		idem:  make(map[string]string),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a bare-formula job; it lifts the formula
// into a Problem and delegates to SubmitProblem. The formula is cloned, so
// the caller may reuse f.
func (s *Scheduler) Submit(f *dqbf.Formula, eng Engine, lim Limits) (*Job, error) {
	return s.SubmitProblem(problem.FromDQBF(f), eng, lim)
}

// SubmitProblem validates and enqueues a job for an ingested problem of any
// formula kind (PQE queries are not jobs — they are answered synchronously
// by SolvePQE). The problem is cloned, so the caller may reuse p. A cache
// hit completes the job immediately without queueing. Returns ErrQueueFull
// when the queue has no slot and ErrDraining once Drain has begun — the
// draining check and the queue send happen under one lock with Drain's
// queue close, so a job is either rejected with ErrDraining or enqueued
// before the close and guaranteed to reach a terminal state.
//
// The cache/store key is the problem's canonical hash, which is computed on
// the normalized formula: the same instance ingested as DQDIMACS and as a
// BENCH netlist shares one cache and store entry.
func (s *Scheduler) SubmitProblem(p *problem.Problem, eng Engine, lim Limits) (*Job, error) {
	return s.SubmitProblemIdem(p, eng, lim, "")
}

// SubmitProblemIdem is SubmitProblem with an idempotency key: while a job
// submitted under the same non-empty key is still tracked (queued, running,
// or finished-but-unevicted), resubmits return that job instead of creating
// a new one, and count as IdemHits rather than submissions. The cluster
// coordinator keys forwarded submits on canonical hash plus attempt number,
// so a forward retried after a network failure cannot double-run — and
// double-count — a job the worker had in fact accepted. Keys unregister when
// their job is evicted from history.
func (s *Scheduler) SubmitProblemIdem(p *problem.Problem, eng Engine, lim Limits, idemKey string) (*Job, error) {
	if eng == "" {
		eng = s.cfg.DefaultEngine
	}
	if _, err := ParseEngine(string(eng)); err != nil {
		return nil, err
	}
	if p.Kind == problem.KindPQE {
		s.rejected.Add(1)
		return nil, fmt.Errorf("service: PQE queries are not scheduler jobs (use SolvePQE)")
	}
	if err := p.Validate(); err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	f := p.Formula

	timeout := lim.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	bl := budget.Limits{Timeout: timeout, Conflicts: lim.Conflicts, Decisions: lim.Decisions, Nodes: lim.Nodes}

	// Both cache tiers are probed before s.mu is taken: the disk tier
	// re-verifies Skolem certificates (a SAT call) and must not run under the
	// scheduler lock. A hit found here is finished under the lock below, so
	// the draining check stays atomic with enqueue/finish.
	key := p.CanonicalHash()
	out, hit := s.cacheLookup(key)
	if hit {
		out.FromCache = true
	} else if out, hit = s.storeLookup(f, key); hit {
		out.FromStore = true
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected.Add(1)
		return nil, ErrDraining
	}
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			if j, tracked := s.jobs[id]; tracked {
				s.idemHits.Add(1)
				return j, nil
			}
			delete(s.idem, idemKey) // job evicted underneath the key
		}
	}
	s.nextID++
	job := &Job{
		id:        fmt.Sprintf("j%d", s.nextID),
		p:         p.Clone(),
		key:       key,
		eng:       eng,
		bud:       budget.New(bl),
		idemKey:   idemKey,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if s.cfg.TraceEvents > 0 {
		job.trc = trace.NewRecorder(s.cfg.TraceEvents)
	}

	if hit {
		if out.FromStore {
			s.storeHits.Add(1)
		} else {
			s.cacheHits.Add(1)
		}
		s.submitted.Add(1)
		s.completed.Add(1)
		s.solved.Add(1)
		job.finish(out)
		s.remember(job)
		if idemKey != "" {
			s.idem[idemKey] = job.id
		}
		return job, nil
	}

	select {
	case s.queue <- job:
	default:
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.submitted.Add(1)
	s.jobs[job.id] = job
	if idemKey != "" {
		s.idem[idemKey] = job.id
	}
	return job, nil
}

// cacheLookup consults the result cache with panic containment: a broken
// (or fault-injected) cache must degrade to a miss, never take Submit down.
func (s *Scheduler) cacheLookup(key string) (out Outcome, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			out, ok = Outcome{}, false
		}
	}()
	return s.cache.Get(key)
}

// storeLookup consults the persistent tier after a memory-cache miss. Every
// failure mode — no store configured, I/O error, corrupt entry, unknown
// version, rejected certificate, even a panic in the decode path — degrades
// to a miss so the job solves in memory; the store can make the daemon
// faster but never wrong. A served SAT verdict has its certificate
// re-verified against the formula here, and a verified hit is promoted into
// the memory cache so repeats skip the disk.
func (s *Scheduler) storeLookup(f *dqbf.Formula, key string) (out Outcome, ok bool) {
	if s.store == nil {
		return Outcome{}, false
	}
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			out, ok = Outcome{}, false
		}
	}()
	e, err := s.store.Get(key)
	if err != nil || e == nil {
		return Outcome{}, false
	}
	out = Outcome{Engine: Engine(e.Engine), Reason: "solved"}
	switch e.Verdict {
	case store.VerdictSat:
		if e.Cert == nil {
			// A bare SAT entry (written by an engine without certificate
			// support) cannot be re-proved; while certification is on it does
			// not meet the service's bar, so re-solve instead of trusting it.
			if certifyHQS.Load() {
				return Outcome{}, false
			}
		} else if err := cert.Check(f, e.Cert); err != nil {
			// The checksum held but the certificate does not prove the
			// formula: quarantine the entry and solve fresh. The store must
			// never return a verdict whose certificate fails the checker.
			s.store.RejectCert(key, err)
			return Outcome{}, false
		}
		out.Verdict = VerdictSat
		out.Cert = e.Cert
	case store.VerdictUnsat:
		out.Verdict = VerdictUnsat
	default:
		return Outcome{}, false
	}
	s.cache.Put(key, Outcome{Verdict: out.Verdict, Engine: out.Engine, Reason: out.Reason})
	return out, true
}

// storePut persists a definitive verdict (and its verified certificate) to
// the disk tier. Failures are already counted and logged by the store; the
// scheduler just moves on — the result stays served from memory.
func (s *Scheduler) storePut(job *Job, out Outcome) {
	if s.store == nil || out.FromStore {
		return
	}
	var v store.Verdict
	switch out.Verdict {
	case VerdictSat:
		v = store.VerdictSat
	case VerdictUnsat:
		v = store.VerdictUnsat
	default:
		return
	}
	job.mu.Lock()
	solveMS := job.finished.Sub(job.started).Milliseconds()
	job.mu.Unlock()
	s.store.Put(&store.Entry{
		Key:         job.key,
		Verdict:     v,
		Engine:      string(out.Engine),
		Conflicts:   out.Conflicts,
		Decisions:   out.Decisions,
		SolveMS:     solveMS,
		CreatedUnix: time.Now().Unix(),
		Cert:        out.Cert,
	})
}

// remember records a finished job in the history, evicting the oldest
// finished jobs beyond the history bound. Caller holds s.mu.
func (s *Scheduler) remember(j *Job) {
	s.jobs[j.id] = j
	s.doneIDs = append(s.doneIDs, j.id)
	for len(s.doneIDs) > s.cfg.HistorySize {
		if old := s.jobs[s.doneIDs[0]]; old != nil && old.idemKey != "" {
			delete(s.idem, old.idemKey)
		}
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
		s.historyEvicted.Add(1)
	}
}

// Job returns the job with the given ID, if still tracked.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel stops the job with the given ID: a queued job completes as
// cancelled once a worker picks it up; a running job's budget interrupts the
// solver cores. Cancelling a finished job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return ErrNoSuchJob
	}
	j.bud.Cancel()
	return nil
}

// worker consumes the queue until it is closed by Drain.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// finishJob completes a job exactly once: the first finisher records stats,
// feeds both cache tiers, and files the job into history; later racers are
// no-ops. Persistence happens BEFORE the done channel closes: once a waiter
// has seen a definitive verdict, it is already fsynced on disk, so a kill -9
// immediately after the response cannot lose a result a client observed.
func (s *Scheduler) finishJob(job *Job, out Outcome) {
	if !job.beginFinish(out) {
		return
	}
	func() {
		// The done channel below must close no matter what the persistence
		// path does — a panicking store may cost durability, never a hang.
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
			}
		}()
		s.completed.Add(1)
		switch out.Verdict {
		case VerdictSat, VerdictUnsat:
			s.solved.Add(1)
			// Only definitive verdicts are cached: Unknown depends on the
			// budget that produced it and Error on the failure that did.
			s.cache.Put(job.key, Outcome{
				Verdict: out.Verdict,
				Engine:  out.Engine,
				Reason:  out.Reason,
			})
			s.storePut(job, out)
		case VerdictError:
			s.errored.Add(1)
		default:
			s.unknown.Add(1)
			if out.Reason == "cancelled" {
				s.cancelled.Add(1)
			}
		}
		if job.journaled {
			s.store.JournalDone(job.id)
		}
	}()
	close(job.done)
	s.mu.Lock()
	s.remember(job)
	s.mu.Unlock()
}

func (s *Scheduler) runJob(job *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	// Last line of defense: no panic may kill a worker. Engine panics are
	// already converted to Error outcomes further down; this recover
	// contains everything else (injected dispatch panics, bugs in the
	// scheduler's own bookkeeping) and still moves the job to a terminal
	// state. finishJob's first-finisher rule keeps a late panic after a
	// successful hand-off from double-counting.
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.finishJob(job, Outcome{
				Verdict:    VerdictError,
				Engine:     job.eng,
				Reason:     "error",
				Error:      fmt.Sprintf("worker panic: %v", r),
				PanicStack: string(debug.Stack()),
			})
		}
	}()

	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()

	// Journal the start before solving so a killed process can report this
	// job as lost on its next start.
	if s.store != nil {
		s.store.JournalStart(job.id, job.key)
		job.journaled = true
	}

	// Fault-injection seam: worker dispatch, before any engine runs.
	if err := faults.Fire(faults.SchedDispatch); err != nil {
		s.finishJob(job, Outcome{
			Verdict: VerdictError,
			Engine:  job.eng,
			Reason:  "error",
			Error:   fmt.Sprintf("dispatch failed: %v", err),
		})
		return
	}

	attempt := 0
	var sink trace.Sink
	if job.trc != nil {
		sink = job.trc
	}
	out := solveRetry(job.p, job.eng, job.bud, s.cfg.Retry, func(att Outcome) {
		attempt++
		if attempt > 1 {
			s.retries.Add(1)
		}
		if att.PanicStack != "" {
			s.panics.Add(1)
		}
	}, sink)
	s.fallbacks.Add(int64(out.Fallbacks))
	out.Conflicts = job.bud.ConflictsUsed()
	out.Decisions = job.bud.DecisionsUsed()
	s.finishJob(job, out)
}

// Drain stops accepting jobs, then waits for queued and running jobs to
// finish or for ctx to expire — in the latter case every outstanding job is
// cancelled and Drain waits for the workers to unwind before returning
// ctx.Err(). Drain is idempotent; concurrent calls all wait. Submissions
// racing Drain either land in the queue before it closes (and are run or
// flushed to a cancelled terminal state) or fail with ErrDraining; none are
// silently dropped.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
	}

	// Hard drain: cancel everything still tracked, then wait for workers.
	s.mu.Lock()
	for _, j := range s.jobs {
		j.bud.Cancel()
	}
	s.mu.Unlock()
	for job := range s.queue { // release queued jobs the workers never took
		s.finishJob(job, Outcome{Verdict: VerdictUnknown, Reason: "cancelled"})
	}
	<-idle
	return ctx.Err()
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueFree returns the number of free queue slots (0 when draining), the
// load signal behind hqsd's readiness endpoint and 429 shedding.
func (s *Scheduler) QueueFree() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0
	}
	return cap(s.queue) - len(s.queue)
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats {
	oq, oi, orb := oracle.GlobalStats()
	s.mu.Lock()
	historyLen := len(s.doneIDs)
	s.mu.Unlock()
	st := Stats{
		Submitted:      s.submitted.Load(),
		Completed:      s.completed.Load(),
		Solved:         s.solved.Load(),
		Unknown:        s.unknown.Load(),
		Cancelled:      s.cancelled.Load(),
		Errors:         s.errored.Load(),
		Retries:        s.retries.Load(),
		Fallbacks:      s.fallbacks.Load(),
		Panics:         s.panics.Load(),
		CacheHits:      s.cacheHits.Load(),
		StoreHits:      s.storeHits.Load(),
		IdemHits:       s.idemHits.Load(),
		Rejected:       s.rejected.Load(),
		HistoryEvicted: s.historyEvicted.Load(),
		HistoryLen:     historyLen,
		Queued:         len(s.queue),
		Running:        int(s.running.Load()),
		CacheLen:       s.cache.Len(),
		Workers:        s.cfg.Workers,

		OracleQueries:     oq,
		OracleIncremental: oi,
		OracleRebuilds:    orb,
		Engines:           EngineStats(),
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = &ss
	}
	return st
}
