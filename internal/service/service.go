// Package service turns the batch DQBF solvers into a long-running solver
// service: it provides cancellable engine runners over a shared budget, a
// portfolio mode that races HQS against the iDQ baseline and cancels the
// loser, a bounded worker-pool scheduler with a job queue and per-job
// limits, and an LRU result cache keyed by a canonical hash of the parsed
// formula.
//
// The package is the substrate of the hqsd daemon (cmd/hqsd) but is equally
// usable in-process; every entry point is safe for concurrent use.
package service

import (
	"errors"
	"fmt"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/idq"
)

// Engine selects which solver core decides a job.
type Engine string

const (
	// EngineHQS is the paper's elimination-based solver (internal/core).
	EngineHQS Engine = "hqs"
	// EngineIDQ is the instantiation-based baseline (internal/idq).
	EngineIDQ Engine = "idq"
	// EnginePortfolio races both engines and cancels the loser. Because both
	// engines are sound, the reported verdict is deterministic even though
	// the winning engine may vary from run to run.
	EnginePortfolio Engine = "portfolio"
)

// ParseEngine maps a user-supplied engine name to an Engine; the empty
// string selects the portfolio.
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case EngineHQS, EngineIDQ, EnginePortfolio:
		return Engine(s), nil
	case "":
		return EnginePortfolio, nil
	default:
		return "", fmt.Errorf("service: unknown engine %q (want hqs, idq, or portfolio)", s)
	}
}

// Verdict is the three-valued answer of a budgeted solve.
type Verdict int

const (
	// VerdictUnknown means no verdict was reached (timeout, cancellation,
	// or resource-out).
	VerdictUnknown Verdict = iota
	// VerdictSat means the DQBF is satisfiable.
	VerdictSat
	// VerdictUnsat means the DQBF is unsatisfiable.
	VerdictUnsat
)

func (v Verdict) String() string {
	switch v {
	case VerdictSat:
		return "SAT"
	case VerdictUnsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// MarshalJSON renders the verdict as its string form ("SAT", ...).
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// UnmarshalJSON parses the string form produced by MarshalJSON.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"SAT"`:
		*v = VerdictSat
	case `"UNSAT"`:
		*v = VerdictUnsat
	case `"UNKNOWN"`:
		*v = VerdictUnknown
	default:
		return fmt.Errorf("service: bad verdict %s", data)
	}
	return nil
}

// Outcome is the result of one budgeted solve.
type Outcome struct {
	// Verdict is the answer (Unknown when the budget stopped the solve).
	Verdict Verdict `json:"verdict"`
	// Engine is the engine that produced the verdict; in portfolio mode the
	// race winner. Empty when no engine reached a verdict.
	Engine Engine `json:"engine,omitempty"`
	// Reason explains the outcome: "solved", "timeout", "cancelled",
	// "budget" (conflict/decision cap), or "memout" (node/instantiation
	// cap).
	Reason string `json:"reason"`
	// FromCache marks a result served from the scheduler's LRU cache.
	FromCache bool `json:"from_cache,omitempty"`
	// Conflicts and Decisions are the CDCL totals metered into the job's
	// budget across every oracle call of every engine involved.
	Conflicts int64 `json:"conflicts"`
	Decisions int64 `json:"decisions"`
}

// Run decides f with the given engine under budget b (nil means unlimited).
// The formula is not modified. Conflict/decision meters are read from b, so
// callers wanting per-call totals should pass a fresh budget per call.
func Run(f *dqbf.Formula, eng Engine, b *budget.Budget) (Outcome, error) {
	var out Outcome
	switch eng {
	case EngineHQS:
		out = runHQS(f, b)
	case EngineIDQ:
		out = runIDQ(f, b)
	case EnginePortfolio, "":
		out = runPortfolio(f, b)
	default:
		return Outcome{}, fmt.Errorf("service: unknown engine %q", eng)
	}
	out.Conflicts = b.ConflictsUsed()
	out.Decisions = b.DecisionsUsed()
	return out, nil
}

// reasonFromErr maps a budget stop reason to an Outcome.Reason.
func reasonFromErr(err error) string {
	switch {
	case err == nil:
		return "cancelled"
	case errors.Is(err, budget.ErrDeadline):
		return "timeout"
	case errors.Is(err, budget.ErrCancelled):
		return "cancelled"
	case errors.Is(err, budget.ErrConflicts), errors.Is(err, budget.ErrDecisions):
		return "budget"
	default:
		return "cancelled"
	}
}

func runHQS(f *dqbf.Formula, b *budget.Budget) Outcome {
	opt := core.DefaultOptions()
	opt.Budget = b
	res := core.New(opt).Solve(f)
	out := Outcome{Engine: EngineHQS}
	switch res.Status {
	case core.Solved:
		out.Reason = "solved"
		if res.Sat {
			out.Verdict = VerdictSat
		} else {
			out.Verdict = VerdictUnsat
		}
	case core.Timeout:
		out.Reason = "timeout"
	case core.Memout:
		out.Reason = "memout"
	case core.Cancelled:
		out.Reason = reasonFromErr(b.Err())
	}
	return out
}

func runIDQ(f *dqbf.Formula, b *budget.Budget) Outcome {
	res := idq.New(idq.Options{Budget: b}).Solve(f)
	out := Outcome{Engine: EngineIDQ}
	switch res.Status {
	case idq.Solved:
		out.Reason = "solved"
		if res.Sat {
			out.Verdict = VerdictSat
		} else {
			out.Verdict = VerdictUnsat
		}
	case idq.Timeout:
		out.Reason = "timeout"
	case idq.Memout:
		out.Reason = "memout"
	case idq.Cancelled:
		out.Reason = reasonFromErr(b.Err())
	}
	return out
}

// runPortfolio races HQS and iDQ on child budgets of b. The first definitive
// verdict wins and the loser is cancelled; if the parent budget stops first,
// both children are cancelled. Different engines win on different instance
// families (HQS on elimination-friendly prefixes, iDQ on refutable
// instances), which is the point of keeping both live behind one interface.
func runPortfolio(f *dqbf.Formula, b *budget.Budget) Outcome {
	b1, b2 := b.Child(), b.Child()
	ch := make(chan Outcome, 2)
	go func() { ch <- runHQS(f, b1) }()
	go func() { ch <- runIDQ(f, b2) }()

	var winner *Outcome
	var unknownReasons []string
	doneCh := b.Done()
	for n := 0; n < 2; {
		select {
		case o := <-ch:
			n++
			if o.Verdict != VerdictUnknown {
				if winner == nil {
					o := o
					winner = &o
					// Cancel the loser; keep draining so both goroutines
					// finish before we fold the meters back.
					b1.Cancel()
					b2.Cancel()
				}
			} else {
				unknownReasons = append(unknownReasons, o.Reason)
			}
		case <-doneCh:
			doneCh = nil
			b1.Cancel()
			b2.Cancel()
		}
	}
	b.AddConflicts(b1.ConflictsUsed() + b2.ConflictsUsed())
	b.AddDecisions(b1.DecisionsUsed() + b2.DecisionsUsed())
	if winner != nil {
		return *winner
	}
	// Both engines came back empty-handed. If the parent budget stopped the
	// race, report its reason; otherwise merge the children's reasons by a
	// fixed priority so the report does not depend on arrival order.
	out := Outcome{Verdict: VerdictUnknown, Engine: EnginePortfolio, Reason: "cancelled"}
	if err := b.Err(); err != nil {
		out.Reason = reasonFromErr(err)
		return out
	}
	for _, want := range []string{"timeout", "memout", "budget", "cancelled"} {
		for _, r := range unknownReasons {
			if r == want {
				out.Reason = want
				return out
			}
		}
	}
	return out
}
