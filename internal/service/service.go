// Package service turns the batch DQBF solvers into a long-running solver
// service: it provides cancellable engine runners over a shared budget, a
// portfolio mode that races HQS, the iDQ baseline, the definition-extraction
// engine, and the expansion reference — cancelling the losers, with
// per-engine win/attempt counters answering which arm actually produces
// verdicts — a bounded worker-pool scheduler with a job queue and per-job
// limits, and an LRU result cache keyed by a canonical hash of the parsed
// formula.
//
// The package is also the failure-containment boundary of the stack: every
// engine attempt runs under recover (a panicking solver core becomes an
// Error verdict with the stack captured, never a dead worker), transient
// failures are retried with exponential backoff and jitter, failed engines
// fall back along a chain ending in the iDQ baseline, and SAT verdicts
// backed by Skolem certificates are verified before they are reported.
//
// The package is the substrate of the hqsd daemon (cmd/hqsd) but is equally
// usable in-process; every entry point is safe for concurrent use.
package service

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/defex"
	"repro/internal/dqbf"
	"repro/internal/expand"
	"repro/internal/faults"
	"repro/internal/idq"
	"repro/internal/pqe"
	"repro/internal/problem"
	"repro/internal/trace"
)

// Engine selects which solver core decides a job.
type Engine string

const (
	// EngineHQS is the paper's elimination-based solver (internal/core).
	EngineHQS Engine = "hqs"
	// EngineIDQ is the instantiation-based baseline (internal/idq).
	EngineIDQ Engine = "idq"
	// EngineDefex is the definition-extraction engine (internal/defex).
	EngineDefex Engine = "defex"
	// EngineExpand is the eager full-expansion reference engine
	// (internal/expand).
	EngineExpand Engine = "expand"
	// EnginePortfolio races the engines and cancels the losers. Because every
	// engine is sound, the reported verdict is deterministic even though the
	// winning engine may vary from run to run.
	EnginePortfolio Engine = "portfolio"
)

// Engines lists every selectable engine (portfolio arms first).
var Engines = []Engine{EngineHQS, EngineIDQ, EngineDefex, EngineExpand, EnginePortfolio}

// ParseEngine maps a user-supplied engine name to an Engine; the empty
// string selects the portfolio.
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case EngineHQS, EngineIDQ, EngineDefex, EngineExpand, EnginePortfolio:
		return Engine(s), nil
	case "":
		return EnginePortfolio, nil
	default:
		return "", fmt.Errorf("service: unknown engine %q (want hqs, idq, defex, expand, or portfolio)", s)
	}
}

// EngineCounters are the per-engine attempt/win totals of the process.
type EngineCounters struct {
	// Attempts counts engine runs started (portfolio arms count for the arm's
	// engine AND one attempt for the portfolio row itself).
	Attempts int64 `json:"attempts"`
	// Wins counts definitive verdicts the engine itself produced; the
	// portfolio row never wins — its verdicts are credited to the winning arm.
	Wins int64 `json:"wins"`
}

// engineMeters holds the process-global per-engine counters; index by the
// engine constants above. Atomic because portfolio arms run concurrently.
var engineMeters = map[Engine]*struct{ attempts, wins atomic.Int64 }{
	EngineHQS:       {},
	EngineIDQ:       {},
	EngineDefex:     {},
	EngineExpand:    {},
	EnginePortfolio: {},
}

// EngineStats snapshots the process-wide per-engine attempt/win counters —
// the answer to "which portfolio arm actually produces the verdicts".
func EngineStats() map[Engine]EngineCounters {
	out := make(map[Engine]EngineCounters, len(engineMeters))
	for eng, m := range engineMeters {
		out[eng] = EngineCounters{Attempts: m.attempts.Load(), Wins: m.wins.Load()}
	}
	return out
}

// ResetEngineStats zeroes the per-engine counters (tests, benchmark runs).
func ResetEngineStats() {
	for _, m := range engineMeters {
		m.attempts.Store(0)
		m.wins.Store(0)
	}
}

// FormatEngineStats renders the counters as a stable one-line-per-engine
// table in the fixed Engines order.
func FormatEngineStats(stats map[Engine]EngineCounters) string {
	var b strings.Builder
	for _, eng := range Engines {
		c := stats[eng]
		if c.Attempts == 0 && c.Wins == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s attempts=%-6d wins=%d\n", eng, c.Attempts, c.Wins)
	}
	return b.String()
}

// Verdict is the four-valued answer of a budgeted solve.
type Verdict int

const (
	// VerdictUnknown means no verdict was reached (timeout, cancellation,
	// or resource-out).
	VerdictUnknown Verdict = iota
	// VerdictSat means the DQBF is satisfiable.
	VerdictSat
	// VerdictUnsat means the DQBF is unsatisfiable.
	VerdictUnsat
	// VerdictError means the solve failed rather than ran out of budget: an
	// engine panicked, an oracle returned an injected or internal error, or
	// a Skolem certificate failed verification. Error outcomes are never
	// cached and are produced only after retries and fallbacks were
	// exhausted.
	VerdictError
)

func (v Verdict) String() string {
	switch v {
	case VerdictSat:
		return "SAT"
	case VerdictUnsat:
		return "UNSAT"
	case VerdictError:
		return "ERROR"
	default:
		return "UNKNOWN"
	}
}

// MarshalJSON renders the verdict as its string form ("SAT", ...).
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// UnmarshalJSON parses the string form produced by MarshalJSON.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"SAT"`:
		*v = VerdictSat
	case `"UNSAT"`:
		*v = VerdictUnsat
	case `"UNKNOWN"`:
		*v = VerdictUnknown
	case `"ERROR"`:
		*v = VerdictError
	default:
		return fmt.Errorf("service: bad verdict %s", data)
	}
	return nil
}

// Outcome is the result of one budgeted solve.
type Outcome struct {
	// Verdict is the answer (Unknown when the budget stopped the solve,
	// Error when the solve failed).
	Verdict Verdict `json:"verdict"`
	// Engine is the engine that produced the verdict; in portfolio mode the
	// race winner. Empty when no engine reached a verdict.
	Engine Engine `json:"engine,omitempty"`
	// Reason explains the outcome: "solved", "timeout", "cancelled",
	// "budget" (conflict/decision cap), "memout" (node/instantiation cap),
	// or "error" (engine failure; see Error).
	Reason string `json:"reason"`
	// Error describes the failure behind a VerdictError outcome.
	Error string `json:"error,omitempty"`
	// PanicStack is the captured goroutine stack when the failure was a
	// panic, preserved in the job record for postmortems.
	PanicStack string `json:"panic_stack,omitempty"`
	// FromCache marks a result served from the scheduler's in-memory LRU.
	FromCache bool `json:"from_cache,omitempty"`
	// FromStore marks a result served from the persistent on-disk store
	// (its certificate, when present, was re-verified before serving).
	FromStore bool `json:"from_store,omitempty"`
	// Attempts counts engine runs performed for this outcome, including
	// retries and fallback runs (0 for cache hits, otherwise >= 1).
	Attempts int `json:"attempts,omitempty"`
	// Fallbacks counts how far the outcome fell down the engine fallback
	// chain (0 = the requested engine answered).
	Fallbacks int `json:"fallbacks,omitempty"`
	// Conflicts and Decisions are the CDCL totals metered into the job's
	// budget across every oracle call of every engine involved.
	Conflicts int64 `json:"conflicts"`
	Decisions int64 `json:"decisions"`
	// Cert is the verified Skolem certificate backing a SAT verdict, carried
	// so the scheduler's persistent store can write it next to the result
	// (and re-verify it on every future load). Nil for UNSAT, for engines
	// that emitted none, and for HQS/defex runs without -certify. Not part
	// of the JSON surface — certificates are large and internal.
	Cert *cert.Certificate `json:"-"`
}

// Run decides f with the given engine under budget b (nil means unlimited).
// It performs exactly one attempt — no retries or fallbacks (see Solve for
// the hardened entry point) — but panics are still isolated into a
// VerdictError outcome, and SAT answers carrying a Skolem certificate are
// verified before being reported. The formula is not modified.
// Conflict/decision meters are read from b, so callers wanting per-call
// totals should pass a fresh budget per call.
func Run(f *dqbf.Formula, eng Engine, b *budget.Budget) (Outcome, error) {
	return RunTraced(f, eng, b, nil)
}

// RunTraced is Run with a per-pass trace sink; both lift the bare formula
// into a Problem and delegate to the Problem entry points below.
func RunTraced(f *dqbf.Formula, eng Engine, b *budget.Budget, sink trace.Sink) (Outcome, error) {
	return RunTracedProblem(problem.FromDQBF(f), eng, b, sink)
}

// RunProblem decides an ingested problem (any formula kind, from any input
// format) with the given engine under budget b. See Run for the attempt
// semantics.
func RunProblem(p *problem.Problem, eng Engine, b *budget.Budget) (Outcome, error) {
	return RunTracedProblem(p, eng, b, nil)
}

// RunTracedProblem is RunProblem with a per-pass trace sink: every pipeline
// pass the HQS engine executes (in portfolio mode, the HQS arm) emits one
// structured trace.Event to sink. A nil sink disables tracing; the iDQ
// engine has no pass pipeline and emits nothing. PQE problems are not
// engine jobs — route them through SolvePQE instead.
func RunTracedProblem(p *problem.Problem, eng Engine, b *budget.Budget, sink trace.Sink) (Outcome, error) {
	if _, err := ParseEngine(string(eng)); err != nil {
		return Outcome{}, err
	}
	if p.Formula == nil {
		return Outcome{}, fmt.Errorf("service: %s problem has no formula (use SolvePQE for PQE queries)", p.Kind)
	}
	out := runGuarded(p, eng, b, sink)
	out.Attempts = 1
	out.Conflicts = b.ConflictsUsed()
	out.Decisions = b.DecisionsUsed()
	return out, nil
}

// runGuarded executes one engine attempt with panic isolation: a panic
// anywhere in the engine (or injected by a fault plan) is converted into a
// VerdictError outcome carrying the message and captured stack.
func runGuarded(p *problem.Problem, eng Engine, b *budget.Budget, sink trace.Sink) (out Outcome) {
	if m := engineMeters[eng]; m != nil {
		m.attempts.Add(1)
		defer func() {
			// A win is a definitive verdict produced by this engine itself;
			// the portfolio's verdicts carry the winning arm's name and were
			// already credited there.
			if (out.Verdict == VerdictSat || out.Verdict == VerdictUnsat) && out.Engine == eng {
				m.wins.Add(1)
			}
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			out = Outcome{
				Verdict:    VerdictError,
				Engine:     eng,
				Reason:     "error",
				Error:      fmt.Sprintf("engine %s panicked: %v", eng, r),
				PanicStack: string(debug.Stack()),
			}
		}
	}()
	switch eng {
	case EngineHQS:
		return runHQS(p, b, sink)
	case EngineIDQ:
		return runIDQ(p.Formula, b)
	case EngineDefex:
		return runDefex(p.Formula, b, sink)
	case EngineExpand:
		return runExpand(p.Formula, b)
	default:
		return runPortfolio(p, b, sink)
	}
}

// reasonFromErr maps a budget stop reason to an Outcome.Reason.
func reasonFromErr(err error) string {
	switch {
	case err == nil:
		return "cancelled"
	case errors.Is(err, budget.ErrDeadline):
		return "timeout"
	case errors.Is(err, budget.ErrCancelled):
		return "cancelled"
	case errors.Is(err, budget.ErrConflicts), errors.Is(err, budget.ErrDecisions):
		return "budget"
	default:
		return "cancelled"
	}
}

// certifyHQS, when set, makes every HQS run extract a Skolem certificate and
// has the service verify it before a SAT verdict is reported (the same
// trust policy the iDQ engine always gets). Atomic because portfolio mode
// runs HQS arms on concurrent goroutines.
var certifyHQS atomic.Bool

// SetCertifyHQS toggles certificate-checked HQS SAT verdicts service-wide
// (hqs -cert / hqsd -certify).
func SetCertifyHQS(on bool) { certifyHQS.Store(on) }

func runHQS(p *problem.Problem, b *budget.Budget, sink trace.Sink) Outcome {
	f := p.Formula
	opt := core.DefaultOptions()
	opt.Budget = b
	opt.Trace = sink
	opt.Certify = certifyHQS.Load()
	res := core.New(opt).Solve(p)
	out := Outcome{Engine: EngineHQS}
	switch res.Status {
	case core.Solved:
		out.Reason = "solved"
		if res.Sat {
			// Under -certify a SAT verdict must survive the independent
			// checker, exactly like the iDQ engine's table certificates.
			if opt.Certify {
				if err := verifySkolem(f, res.Certificate, res.CertErr); err != nil {
					return Outcome{
						Verdict: VerdictError,
						Engine:  EngineHQS,
						Reason:  "error",
						Error:   fmt.Sprintf("skolem certificate rejected: %v", err),
					}
				}
				out.Cert = res.Certificate
			}
			out.Verdict = VerdictSat
		} else {
			out.Verdict = VerdictUnsat
		}
	case core.Timeout:
		out.Reason = "timeout"
	case core.Memout:
		out.Reason = "memout"
	case core.Cancelled:
		out.Reason = reasonFromErr(b.Err())
	}
	return out
}

func runIDQ(f *dqbf.Formula, b *budget.Budget) Outcome {
	res := idq.New(idq.Options{Budget: b}).Solve(f)
	out := Outcome{Engine: EngineIDQ}
	switch res.Status {
	case idq.Solved:
		if res.Sat {
			// Do not report SAT on the strength of the solver alone: the
			// emitted Skolem certificate is checked independently first. A
			// certificate the checker rejects means the solver (or the
			// memory under it) is broken, and the honest answer is Error,
			// not a silent SAT.
			ac, err := verifyCertificate(f, res.Certificate)
			if err != nil {
				return Outcome{
					Verdict: VerdictError,
					Engine:  EngineIDQ,
					Reason:  "error",
					Error:   fmt.Sprintf("skolem certificate rejected: %v", err),
				}
			}
			out.Cert = ac
			out.Verdict = VerdictSat
		} else {
			out.Verdict = VerdictUnsat
		}
		out.Reason = "solved"
	case idq.Timeout:
		out.Reason = "timeout"
	case idq.Memout:
		out.Reason = "memout"
	case idq.Cancelled:
		out.Reason = reasonFromErr(b.Err())
	}
	return out
}

// runDefex runs the definition-extraction engine. Like HQS it extracts AIG
// Skolem certificates, so it shares the certifyHQS trust policy: under
// -certify a SAT verdict must survive the independent checker.
func runDefex(f *dqbf.Formula, b *budget.Budget, sink trace.Sink) Outcome {
	opt := defex.DefaultOptions()
	opt.Budget = b
	opt.Trace = sink
	opt.Certify = certifyHQS.Load()
	res := defex.New(opt).Solve(f)
	out := Outcome{Engine: EngineDefex}
	switch res.Status {
	case defex.Solved:
		out.Reason = "solved"
		if res.Sat {
			if opt.Certify {
				if err := verifySkolem(f, res.Certificate, res.CertErr); err != nil {
					return Outcome{
						Verdict: VerdictError,
						Engine:  EngineDefex,
						Reason:  "error",
						Error:   fmt.Sprintf("skolem certificate rejected: %v", err),
					}
				}
				out.Cert = res.Certificate
			}
			out.Verdict = VerdictSat
		} else {
			out.Verdict = VerdictUnsat
		}
	case defex.Timeout:
		out.Reason = "timeout"
	case defex.Memout:
		out.Reason = "memout"
	case defex.Cancelled:
		out.Reason = reasonFromErr(b.Err())
	}
	return out
}

// runExpand runs the eager full-expansion reference engine. Its table
// certificates are always checked (the iDQ trust policy): the engine exists
// for cross-checking, so an unverified SAT from it has no value.
func runExpand(f *dqbf.Formula, b *budget.Budget) Outcome {
	res, err := expand.New(expand.Options{Budget: b, Certify: true}).Solve(f)
	out := Outcome{Engine: EngineExpand}
	if err != nil {
		switch {
		case errors.Is(err, budget.ErrDeadline):
			out.Reason = "timeout"
		case errors.Is(err, budget.ErrCancelled),
			errors.Is(err, budget.ErrConflicts),
			errors.Is(err, budget.ErrDecisions):
			out.Reason = reasonFromErr(b.Err())
		case strings.Contains(err.Error(), "exceed limit"):
			// The expansion refusal is this engine's memory limit.
			out.Reason = "memout"
		default:
			out.Verdict = VerdictError
			out.Reason = "error"
			out.Error = err.Error()
		}
		return out
	}
	if res.Sat {
		ac, err := verifyCertificate(f, res.Certificate)
		if err != nil {
			return Outcome{
				Verdict: VerdictError,
				Engine:  EngineExpand,
				Reason:  "error",
				Error:   fmt.Sprintf("skolem certificate rejected: %v", err),
			}
		}
		out.Cert = ac
		out.Verdict = VerdictSat
	} else {
		out.Verdict = VerdictUnsat
	}
	out.Reason = "solved"
	return out
}

// verifyCertificate checks a table-based Skolem certificate against the
// formula by lifting it into the shared AIG checker (internal/cert) — the
// same code path that validates HQS-extracted certificates — and returns
// the lifted certificate so the outcome can carry it to the persistent
// store. A nil certificate passes with a nil result — engines without
// certificate support report bare verdicts.
func verifyCertificate(f *dqbf.Formula, c *dqbf.Certificate) (*cert.Certificate, error) {
	if err := faults.Fire(faults.CertVerify); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, nil
	}
	ac, err := cert.FromTables(f, c)
	if err != nil {
		return nil, err
	}
	if err := cert.Check(f, ac); err != nil {
		return nil, err
	}
	return ac, nil
}

// verifySkolem checks an HQS-extracted certificate (one independent SAT
// call), surfacing an extraction failure or a missing certificate as a
// verification failure. It shares the service.certify fault point with the
// table path.
func verifySkolem(f *dqbf.Formula, c *cert.Certificate, extractErr error) error {
	if err := faults.Fire(faults.CertVerify); err != nil {
		return err
	}
	if extractErr != nil {
		return fmt.Errorf("extraction failed: %w", extractErr)
	}
	return cert.Check(f, c)
}

// pqeMeters counts PQE queries answered and failed, the PQE analogue of the
// per-engine counters.
var pqeMeters struct{ queries, failures atomic.Int64 }

// PQEStats returns the process-wide (queries answered, failures) totals of
// SolvePQE.
func PQEStats() (queries, failures int64) {
	return pqeMeters.queries.Load(), pqeMeters.failures.Load()
}

// SolvePQE answers a partial-quantifier-elimination query under budget b
// (nil means unlimited) with the same failure containment engine runs get:
// a panic anywhere in the PQE engine becomes an error, never a dead caller.
// On success the returned result's Q satisfies Q ∧ ∃X[G] ≡ ∃X[F ∧ G].
func SolvePQE(sp *problem.PQESplit, b *budget.Budget, sink trace.Sink) (res *pqe.Result, err error) {
	pqeMeters.queries.Add(1)
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("pqe engine panicked: %v\n%s", r, debug.Stack())
		}
		if err != nil {
			pqeMeters.failures.Add(1)
		}
	}()
	return pqe.Solve(sp, pqe.Options{Budget: b, Trace: sink})
}

// PortfolioArms lists the engines the portfolio races, in the order their
// goroutines are launched.
var PortfolioArms = []Engine{EngineHQS, EngineIDQ, EngineDefex, EngineExpand}

// runPortfolio races the portfolio arms (HQS, iDQ, defex, expand) on child
// budgets of b. The first definitive verdict wins and the losers are
// cancelled; if the parent budget stops first, every child is cancelled.
// Different engines win on different instance families (HQS on
// elimination-friendly prefixes, iDQ on refutable instances, defex on
// definable PEC boxes, expand on tiny universal counts), which is the point
// of keeping them all live behind one interface.
//
// Each arm runs guarded in its own goroutine, so a panicking engine loses
// the race instead of killing the process; the portfolio reports Error only
// when no arm produced a verdict and at least one failed outright.
func runPortfolio(p *problem.Problem, b *budget.Budget, sink trace.Sink) Outcome {
	arms := PortfolioArms
	buds := make([]*budget.Budget, len(arms))
	ch := make(chan Outcome, len(arms))
	cancelAll := func() {
		for _, cb := range buds {
			cb.Cancel()
		}
	}
	for i, eng := range arms {
		buds[i] = b.Child()
		// Only the HQS arm gets the per-pass trace sink: sinks need not be
		// safe for concurrent emission from racing pipelines.
		var armSink trace.Sink
		if eng == EngineHQS {
			armSink = sink
		}
		go func(eng Engine, cb *budget.Budget, s trace.Sink) {
			ch <- runGuarded(p, eng, cb, s)
		}(eng, buds[i], armSink)
	}

	var winner *Outcome
	var losers []Outcome
	doneCh := b.Done()
	for n := 0; n < len(arms); {
		select {
		case o := <-ch:
			n++
			if o.Verdict == VerdictSat || o.Verdict == VerdictUnsat {
				if winner == nil {
					o := o
					winner = &o
					// Cancel the losers; keep draining so every goroutine
					// finishes before we fold the meters back.
					cancelAll()
				}
			} else {
				losers = append(losers, o)
			}
		case <-doneCh:
			doneCh = nil
			cancelAll()
		}
	}
	for _, cb := range buds {
		b.AddConflicts(cb.ConflictsUsed())
		b.AddDecisions(cb.DecisionsUsed())
	}
	if winner != nil {
		return *winner
	}
	// Both arms came back empty-handed. If the parent budget stopped the
	// race, report its reason; otherwise merge the arms' outcomes by a fixed
	// priority (resource exhaustion over failure over cancellation) so the
	// report does not depend on arrival order.
	out := Outcome{Verdict: VerdictUnknown, Engine: EnginePortfolio, Reason: "cancelled"}
	if err := b.Err(); err != nil {
		out.Reason = reasonFromErr(err)
		return out
	}
	for _, want := range []string{"timeout", "memout", "budget"} {
		for _, o := range losers {
			if o.Reason == want {
				out.Reason = want
				return out
			}
		}
	}
	for _, o := range losers {
		if o.Verdict == VerdictError {
			out.Verdict = VerdictError
			out.Reason = "error"
			out.Error = o.Error
			out.PanicStack = o.PanicStack
			return out
		}
	}
	return out
}
