package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// paperExample1 is ∀x1∀x2 ∃y1(x1) ∃y2(x2) with matrix (y1↔x1)∧(y2↔x2):
// satisfiable, no equivalent QBF prefix (paper Example 1).
func paperExample1() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

// unsatExample is ∀x ∃y(∅) with matrix (y↔x): unsatisfiable because y cannot
// depend on x.
func unsatExample() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2)
	f.Matrix.AddDimacsClause(-2, 1)
	f.Matrix.AddDimacsClause(2, -1)
	return f
}

// pigeonholeDQBF is PHP(n+1, n) as an existential-only DQBF — UNSAT and
// exponentially hard for CDCL, so both engines grind on it long enough for a
// mid-solve cancellation to land inside a SAT oracle call.
func pigeonholeDQBF(n int) *dqbf.Formula {
	f := dqbf.New()
	v := cnf.Var(0)
	next := func() cnf.Var { v++; f.AddExistential(v); return v }
	p := make([][]cnf.Var, n+1)
	for i := range p {
		p[i] = make([]cnf.Var, n)
		for j := range p[i] {
			p[i][j] = next()
		}
	}
	for i := 0; i <= n; i++ {
		c := make([]cnf.Lit, 0, n)
		for j := 0; j < n; j++ {
			c = append(c, cnf.PosLit(p[i][j]))
		}
		f.Matrix.AddClause(c...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				f.Matrix.AddClause(cnf.NegLit(p[i][j]), cnf.NegLit(p[k][j]))
			}
		}
	}
	return f
}

func TestRunEngines(t *testing.T) {
	for _, eng := range Engines {
		for _, tc := range []struct {
			f    *dqbf.Formula
			want Verdict
		}{
			{paperExample1(), VerdictSat},
			{unsatExample(), VerdictUnsat},
		} {
			out, err := Run(tc.f, eng, budget.WithTimeout(30*time.Second))
			if err != nil {
				t.Fatalf("%s: Run: %v", eng, err)
			}
			if out.Verdict != tc.want {
				t.Fatalf("%s: verdict = %v, want %v", eng, out.Verdict, tc.want)
			}
			if out.Reason != "solved" {
				t.Fatalf("%s: reason = %q, want solved", eng, out.Reason)
			}
		}
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if _, err := Run(paperExample1(), Engine("bogus"), nil); err == nil {
		t.Fatal("want error for unknown engine")
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatal("want error from ParseEngine")
	}
	if eng, err := ParseEngine(""); err != nil || eng != EnginePortfolio {
		t.Fatalf("ParseEngine(\"\") = %v, %v; want portfolio", eng, err)
	}
}

// TestCancelMidSolve is the tentpole cancellation scenario: a hard instance
// is cancelled mid-solve and each engine must return Unknown promptly.
func TestCancelMidSolve(t *testing.T) {
	for _, eng := range []Engine{EngineHQS, EngineIDQ, EngineDefex, EnginePortfolio} {
		eng := eng
		t.Run(string(eng), func(t *testing.T) {
			t.Parallel()
			b := budget.New(budget.Limits{})
			go func() {
				time.Sleep(50 * time.Millisecond)
				b.Cancel()
			}()
			start := time.Now()
			out, err := Run(pigeonholeDQBF(11), eng, b)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if out.Verdict != VerdictUnknown {
				t.Fatalf("verdict = %v (in %v), want UNKNOWN", out.Verdict, elapsed)
			}
			if out.Reason != "cancelled" {
				t.Fatalf("reason = %q, want cancelled", out.Reason)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("cancellation took %v, want prompt return", elapsed)
			}
		})
	}
}

// TestPortfolioDeterministicAnswer races the portfolio repeatedly on both a
// SAT and an UNSAT instance: whichever engine wins, the verdict must not
// change.
func TestPortfolioDeterministicAnswer(t *testing.T) {
	for i := 0; i < 8; i++ {
		out, err := Run(paperExample1(), EnginePortfolio, budget.WithTimeout(30*time.Second))
		if err != nil || out.Verdict != VerdictSat {
			t.Fatalf("round %d: got %v (err %v), want SAT", i, out.Verdict, err)
		}
		out, err = Run(unsatExample(), EnginePortfolio, budget.WithTimeout(30*time.Second))
		if err != nil || out.Verdict != VerdictUnsat {
			t.Fatalf("round %d: got %v (err %v), want UNSAT", i, out.Verdict, err)
		}
	}
}

func TestPortfolioTimeout(t *testing.T) {
	out, err := Run(pigeonholeDQBF(11), EnginePortfolio, budget.WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Verdict != VerdictUnknown || out.Reason != "timeout" {
		t.Fatalf("got verdict %v reason %q, want UNKNOWN/timeout", out.Verdict, out.Reason)
	}
}

// TestPortfolioAgreesWithSerial is the four-arm acceptance check: on random
// instances the portfolio verdict must match every serial engine that can
// decide the instance within its own limits.
func TestPortfolioAgreesWithSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 25; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(10))
		port, err := Run(f, EnginePortfolio, budget.WithTimeout(30*time.Second))
		if err != nil {
			t.Fatalf("instance %d: portfolio: %v", i, err)
		}
		if port.Verdict != VerdictSat && port.Verdict != VerdictUnsat {
			t.Fatalf("instance %d: portfolio verdict %v (%s)", i, port.Verdict, port.Reason)
		}
		for _, eng := range []Engine{EngineHQS, EngineIDQ, EngineDefex, EngineExpand} {
			out, err := Run(f, eng, budget.WithTimeout(30*time.Second))
			if err != nil {
				t.Fatalf("instance %d %s: %v", i, eng, err)
			}
			if out.Verdict != VerdictSat && out.Verdict != VerdictUnsat {
				continue // engine-local limit; nothing to compare
			}
			if out.Verdict != port.Verdict {
				t.Fatalf("instance %d: %s says %v, portfolio says %v\nclauses %v",
					i, eng, out.Verdict, port.Verdict, f.Matrix.Clauses)
			}
		}
	}
}

// TestEngineStatsMetering pins the per-engine win accounting: serial runs win
// for themselves, and a portfolio run credits the winning arm — never the
// portfolio row itself.
func TestEngineStatsMetering(t *testing.T) {
	ResetEngineStats()
	defer ResetEngineStats()

	for _, eng := range []Engine{EngineHQS, EngineIDQ, EngineDefex, EngineExpand} {
		if _, err := Run(paperExample1(), eng, budget.WithTimeout(30*time.Second)); err != nil {
			t.Fatal(err)
		}
		st := EngineStats()
		if st[eng].Attempts != 1 || st[eng].Wins != 1 {
			t.Fatalf("%s: counters = %+v, want 1 attempt / 1 win", eng, st[eng])
		}
	}

	ResetEngineStats()
	if _, err := Run(unsatExample(), EnginePortfolio, budget.WithTimeout(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	st := EngineStats()
	if st[EnginePortfolio].Attempts != 1 {
		t.Fatalf("portfolio attempts = %d, want 1", st[EnginePortfolio].Attempts)
	}
	if st[EnginePortfolio].Wins != 0 {
		t.Fatalf("portfolio wins = %d, want 0 (wins go to the arm)", st[EnginePortfolio].Wins)
	}
	armWins := st[EngineHQS].Wins + st[EngineIDQ].Wins + st[EngineDefex].Wins + st[EngineExpand].Wins
	if armWins == 0 {
		t.Fatal("no arm was credited with the portfolio's verdict")
	}
	if s := FormatEngineStats(st); !strings.Contains(s, "attempts=") {
		t.Fatalf("FormatEngineStats output %q lacks counters", s)
	}
}

func TestCanonicalHashInvariance(t *testing.T) {
	base := paperExample1()

	perm := dqbf.New()
	perm.AddUniversal(2) // universal order swapped
	perm.AddUniversal(1)
	perm.AddExistential(4, 2) // existential order swapped
	perm.AddExistential(3, 1)
	perm.Matrix.AddDimacsClause(4, -2) // clause order and literal order shuffled
	perm.Matrix.AddDimacsClause(-4, 2)
	perm.Matrix.AddDimacsClause(1, -3)
	perm.Matrix.AddDimacsClause(-1, 3)

	if CanonicalHash(base) != CanonicalHash(perm) {
		t.Fatal("hash not invariant under prefix/clause/literal reordering")
	}
	if CanonicalHash(base) == CanonicalHash(unsatExample()) {
		t.Fatal("distinct formulas collide")
	}

	// A changed dependency set must change the hash even when everything
	// else agrees.
	dep := paperExample1()
	dep.Deps[3].Add(2)
	if CanonicalHash(base) == CanonicalHash(dep) {
		t.Fatal("hash ignores dependency sets")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", Outcome{Verdict: VerdictSat})
	c.Put("b", Outcome{Verdict: VerdictUnsat})
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", Outcome{Verdict: VerdictSat})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func waitDone(t *testing.T, j *Job) Outcome {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Outcome()
}

func TestSchedulerSolvesAndCaches(t *testing.T) {
	s := NewScheduler(Config{Workers: 2})
	defer s.Drain(context.Background())

	j1, err := s.Submit(paperExample1(), EnginePortfolio, Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	out := waitDone(t, j1)
	if out.Verdict != VerdictSat || out.FromCache {
		t.Fatalf("first solve: %+v", out)
	}
	info := j1.Info()
	if info.State != StateDone || info.Outcome == nil || info.Outcome.Verdict != VerdictSat {
		t.Fatalf("job info: %+v", info)
	}

	// Same instance with permuted clauses must hit the cache.
	perm := paperExample1()
	perm.Matrix.Clauses[0], perm.Matrix.Clauses[3] = perm.Matrix.Clauses[3], perm.Matrix.Clauses[0]
	j2, err := s.Submit(perm, EngineHQS, Limits{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	out = waitDone(t, j2)
	if out.Verdict != VerdictSat || !out.FromCache {
		t.Fatalf("second solve not from cache: %+v", out)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.Solved != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSchedulerConcurrentSubmit(t *testing.T) {
	s := NewScheduler(Config{Workers: 4, QueueCap: 256, CacheSize: -1})
	defer s.Drain(context.Background())

	const n = 32
	var wg sync.WaitGroup
	outs := make([]Outcome, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := paperExample1()
			want := VerdictSat
			if i%2 == 1 {
				f = unsatExample()
				want = VerdictUnsat
			}
			j, err := s.Submit(f, EnginePortfolio, Limits{Timeout: 30 * time.Second})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			select {
			case <-j.Done():
			case <-time.After(60 * time.Second):
				t.Errorf("job %d stuck", i)
				return
			}
			outs[i] = j.Outcome()
			if outs[i].Verdict != want {
				t.Errorf("job %d: verdict %v, want %v", i, outs[i].Verdict, want)
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Completed != n || st.Submitted != n {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSchedulerCancelRunningJob(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, CacheSize: -1})
	defer s.Drain(context.Background())

	j, err := s.Submit(pigeonholeDQBF(11), EngineHQS, Limits{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait until a worker picks the job up, then cancel mid-solve.
	deadline := time.Now().Add(10 * time.Second)
	for j.Info().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Cancel(j.ID()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	out := waitDone(t, j)
	if out.Verdict != VerdictUnknown || out.Reason != "cancelled" {
		t.Fatalf("cancelled job: %+v", out)
	}
	// The worker must remain usable: a fresh easy job still solves.
	j2, err := s.Submit(paperExample1(), EngineHQS, Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Submit after cancel: %v", err)
	}
	if out := waitDone(t, j2); out.Verdict != VerdictSat {
		t.Fatalf("post-cancel solve: %+v", out)
	}
	if err := s.Cancel("nope"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("Cancel(nope) = %v, want ErrNoSuchJob", err)
	}
}

func TestSchedulerQueueFullAndLimits(t *testing.T) {
	// One worker stuck on a hard job, a queue of one: the third submit must
	// be rejected with ErrQueueFull.
	s := NewScheduler(Config{Workers: 1, QueueCap: 1, CacheSize: -1})
	blocker, err := s.Submit(pigeonholeDQBF(11), EngineHQS, Limits{})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for blocker.Info().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(paperExample1(), EngineHQS, Limits{}); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if _, err := s.Submit(paperExample1(), EngineHQS, Limits{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if _, err := s.Submit(paperExample1(), Engine("bogus"), Limits{}); err == nil {
		t.Fatal("want engine validation error")
	}
	bad := dqbf.New()
	bad.Matrix.AddDimacsClause(1) // free variable: must be rejected
	if _, err := s.Submit(bad, EngineHQS, Limits{}); err == nil {
		t.Fatal("want validation error for free variable")
	}

	// MaxTimeout clamp: with a 50ms cap the blocker-class job times out.
	s2 := NewScheduler(Config{Workers: 1, CacheSize: -1, MaxTimeout: 50 * time.Millisecond})
	j, err := s2.Submit(pigeonholeDQBF(11), EngineHQS, Limits{Timeout: time.Hour})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if out := waitDone(t, j); out.Verdict != VerdictUnknown || out.Reason != "timeout" {
		t.Fatalf("clamped job: %+v", out)
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("drain s2: %v", err)
	}

	// Hard drain: cancel the blocker via the drain context.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hard drain: %v", err)
	}
	if out := blocker.Outcome(); out.Verdict != VerdictUnknown {
		t.Fatalf("blocker after hard drain: %+v", out)
	}
	if _, err := s.Submit(paperExample1(), EngineHQS, Limits{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
}

func TestSchedulerDrainWaitsForQueued(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, CacheSize: -1})
	jobs := make([]*Job, 0, 8)
	for i := 0; i < 8; i++ {
		j, err := s.Submit(paperExample1(), EngineIDQ, Limits{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %d unfinished after drain", i)
		}
		if out := j.Outcome(); out.Verdict != VerdictSat {
			t.Fatalf("job %d: %+v", i, out)
		}
	}
}

func TestJobHistoryEviction(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, HistorySize: 2, CacheSize: -1})
	defer s.Drain(context.Background())
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(unsatExample(), EngineIDQ, Limits{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID())
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest job should have been evicted")
	}
	if _, ok := s.Job(ids[3]); !ok {
		t.Fatal("newest job missing")
	}
}

func TestVerdictJSON(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictSat:     `"SAT"`,
		VerdictUnsat:   `"UNSAT"`,
		VerdictUnknown: `"UNKNOWN"`,
	} {
		b, err := v.MarshalJSON()
		if err != nil || string(b) != want {
			t.Fatalf("MarshalJSON(%v) = %s, %v; want %s", v, b, err, want)
		}
		if fmt.Sprint(v) != want[1:len(want)-1] {
			t.Fatalf("String(%d) = %s", int(v), v)
		}
	}
}
