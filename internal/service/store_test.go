package service

import (
	"testing"
	"time"

	"repro/internal/aig"
	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/leakcheck"
	"repro/internal/store"
)

// quietStore opens a store for tests with its degradation log silenced.
func quietStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, _, err := store.Open(dir, store.Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

// TestSchedulerStoreWarmStart is the acceptance scenario: results solved by
// one scheduler are served from disk by a fresh scheduler over the same
// directory — the in-memory LRU is gone, exactly as after a daemon restart —
// with SAT certificates re-verified before serving.
func TestSchedulerStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	st1 := quietStore(t, dir)
	s1 := NewScheduler(Config{Workers: 2, Store: st1})
	sat, err := s1.Submit(paperExample1(), EngineIDQ, Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if out := waitDone(t, sat); out.Verdict != VerdictSat || out.FromStore {
		t.Fatalf("cold solve: %+v", out)
	}
	uns, err := s1.Submit(unsatExample(), EngineIDQ, Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if out := waitDone(t, uns); out.Verdict != VerdictUnsat {
		t.Fatalf("cold unsat solve: %+v", out)
	}
	drainNow(t, s1)
	st1.Close()

	st2 := quietStore(t, dir)
	defer st2.Close()
	s2 := NewScheduler(Config{Workers: 2, Store: st2})
	defer drainNow(t, s2)
	j, err := s2.Submit(paperExample1(), EngineIDQ, Limits{})
	if err != nil {
		t.Fatalf("warm Submit: %v", err)
	}
	out := waitDone(t, j)
	if out.Verdict != VerdictSat || !out.FromStore || out.FromCache {
		t.Fatalf("warm SAT not served from store: %+v", out)
	}
	j, err = s2.Submit(unsatExample(), EngineIDQ, Limits{})
	if err != nil {
		t.Fatalf("warm Submit: %v", err)
	}
	if out := waitDone(t, j); out.Verdict != VerdictUnsat || !out.FromStore {
		t.Fatalf("warm UNSAT not served from store: %+v", out)
	}
	stats := s2.Stats()
	if stats.StoreHits != 2 || stats.Store == nil || stats.Store.Hits != 2 {
		t.Fatalf("warm-start stats: %+v / %+v", stats, stats.Store)
	}
	// A repeat now comes from the promoted memory-cache entry, not the disk.
	j, _ = s2.Submit(paperExample1(), EngineIDQ, Limits{})
	if out := waitDone(t, j); !out.FromCache {
		t.Fatalf("store hit was not promoted to the memory cache: %+v", out)
	}
}

// TestSchedulerStoreRejectsBadCertificate plants a checksum-clean entry whose
// certificate does NOT prove the formula. The scheduler must refuse to serve
// it (quarantining the entry) and solve fresh — the store never returns a
// verdict whose certificate fails the checker.
func TestSchedulerStoreRejectsBadCertificate(t *testing.T) {
	dir := t.TempDir()
	f := paperExample1()
	key := CanonicalHash(f)
	st0 := quietStore(t, dir)
	// y1 and y2 pinned to constant false: violates y1↔x1 under x1=1, so the
	// checker must reject, even though the entry's bytes are pristine.
	bogus := &cert.Certificate{G: aig.New(), Funcs: map[cnf.Var]aig.Ref{3: aig.False, 4: aig.False}}
	if err := st0.Put(&store.Entry{
		Key: key, Verdict: store.VerdictSat, Engine: "idq",
		CreatedUnix: time.Now().Unix(), Cert: bogus,
	}); err != nil {
		t.Fatalf("planting entry: %v", err)
	}
	st0.Close()

	st := quietStore(t, dir)
	defer st.Close()
	s := NewScheduler(Config{Workers: 1, Store: st})
	j, err := s.Submit(f, EngineIDQ, Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	out := waitDone(t, j)
	if out.Verdict != VerdictSat || out.FromStore {
		t.Fatalf("want fresh SAT solve, got %+v", out)
	}
	drainNow(t, s) // flushes the write-back of the fresh result
	ss := st.Stats()
	if ss.CertRejected != 1 || ss.Quarantined != 1 {
		t.Fatalf("store stats %+v, want 1 cert-rejected / 1 quarantined", ss)
	}
	// The re-solve wrote a good entry back; it now serves with a cert that
	// passes.
	s2 := NewScheduler(Config{Workers: 1, Store: st})
	defer drainNow(t, s2)
	j2, _ := s2.Submit(paperExample1(), EngineIDQ, Limits{})
	if out := waitDone(t, j2); out.Verdict != VerdictSat || !out.FromStore {
		t.Fatalf("repaired entry not served: %+v", out)
	}
}

// TestSchedulerStoreBareSATUnderCertify: a SAT entry without a certificate is
// fine normally but below the bar when -certify is on — then it must be
// re-solved, not trusted.
func TestSchedulerStoreBareSATUnderCertify(t *testing.T) {
	dir := t.TempDir()
	f := paperExample1()
	st0 := quietStore(t, dir)
	if err := st0.Put(&store.Entry{
		Key: CanonicalHash(f), Verdict: store.VerdictSat, Engine: "hqs",
		CreatedUnix: time.Now().Unix(),
	}); err != nil {
		t.Fatal(err)
	}
	st0.Close()

	SetCertifyHQS(true)
	defer SetCertifyHQS(false)
	st := quietStore(t, dir)
	defer st.Close()
	s := NewScheduler(Config{Workers: 1, Store: st})
	defer drainNow(t, s)
	j, err := s.Submit(f, EngineIDQ, Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out := waitDone(t, j); out.Verdict != VerdictSat || out.FromStore {
		t.Fatalf("bare SAT entry served under -certify: %+v", out)
	}
}

// TestSchedulerStoreFaultsNeverChangeVerdict arms every store fault point at
// full probability: reads fail, writes fail, surviving reads are bit-flipped.
// Every request must still get its correct verdict — the store degrades to a
// pure pass-through.
func TestSchedulerStoreFaultsNeverChangeVerdict(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	st0 := quietStore(t, dir)
	s0 := NewScheduler(Config{Workers: 2, Store: st0})
	j, err := s0.Submit(paperExample1(), EngineIDQ, Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	drainNow(t, s0)
	st0.Close()

	withFaults(t,
		"store.read:error:p=0.5;store.write:error:p=0.5;store.corrupt:error:p=0.5",
		11)
	st := quietStore(t, dir)
	defer st.Close()
	s := NewScheduler(Config{Workers: 2, CacheSize: -1, Store: st})
	defer drainNow(t, s)
	for i := 0; i < 8; i++ {
		sat, err := s.Submit(paperExample1(), EngineIDQ, Limits{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if out := waitDone(t, sat); out.Verdict != VerdictSat {
			t.Fatalf("round %d: disk faults changed SAT verdict: %+v", i, out)
		}
		uns, err := s.Submit(unsatExample(), EngineIDQ, Limits{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if out := waitDone(t, uns); out.Verdict != VerdictUnsat {
			t.Fatalf("round %d: disk faults changed UNSAT verdict: %+v", i, out)
		}
	}
	faults.Deactivate()
	if ss := st.Stats(); ss.IOErrors == 0 && ss.Corrupt == 0 {
		t.Fatalf("chaos plan never fired: %+v", ss)
	}
}

// TestSchedulerHistoryEvictionCounted drives more jobs than the history bound
// and checks the eviction counter and bounded length surface in Stats.
func TestSchedulerHistoryEvictionCounted(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, HistorySize: 3, CacheSize: -1})
	defer drainNow(t, s)
	for i := 0; i < 8; i++ {
		j, err := s.Submit(unsatExample(), EngineIDQ, Limits{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitDone(t, j)
	}
	st := s.Stats()
	if st.HistoryEvicted != 5 || st.HistoryLen != 3 {
		t.Fatalf("history stats %+v, want 5 evicted / len 3", st)
	}
}
