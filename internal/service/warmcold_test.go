//go:build experiment

package service

// The warm-vs-cold-start experiment behind the EXPERIMENTS.md persistence
// numbers. Tag-gated so the ordinary test suite stays fast; run it with
//
//	go test -tags experiment -run TestExperimentWarmColdStart -v ./internal/service
//
// It solves the adder family twice through schedulers sharing one store
// directory: the cold pass populates the store, the warm pass simulates a
// daemon restart (fresh scheduler, empty memory cache) and must answer from
// disk with certificates re-verified.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/store"
)

func TestExperimentWarmColdStart(t *testing.T) {
	insts, err := bench.Generate(bench.FamilyAdder, bench.DefaultGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	SetCertifyHQS(true)
	defer SetCertifyHQS(false)

	pass := func(label string) (time.Duration, Stats) {
		st, _, err := store.Open(dir, store.Options{Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		s := NewScheduler(Config{Workers: 1, Store: st})
		defer drainNow(t, s)
		begin := time.Now()
		for _, inst := range insts {
			j, err := s.Submit(inst.Formula, EngineHQS, Limits{Timeout: 30 * time.Second})
			if err != nil {
				t.Fatalf("%s %s: %v", label, inst.Name, err)
			}
			if out := waitDone(t, j); out.Verdict != VerdictSat && out.Verdict != VerdictUnsat {
				t.Fatalf("%s %s: %+v", label, inst.Name, out)
			}
		}
		return time.Since(begin), s.Stats()
	}

	coldT, coldS := pass("cold")
	warmT, warmS := pass("warm")
	if warmS.StoreHits != int64(len(insts)) {
		t.Fatalf("warm pass got %d/%d store hits", warmS.StoreHits, len(insts))
	}
	fmt.Printf("adder x%d (hqs -certify, 1 worker): cold %.3fs (0 store hits), warm %.3fs (%d/%d store hits, certs re-verified), speedup %.1fx\n",
		len(insts), coldT.Seconds(), warmT.Seconds(), warmS.StoreHits, len(insts), coldT.Seconds()/warmT.Seconds())
	_ = coldS
}
