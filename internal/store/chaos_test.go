package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/leakcheck"
)

// withFaults activates a fault plan for the test. Plans are process-global,
// so tests using this helper must not call t.Parallel.
func withFaults(t *testing.T, spec string, seed int64) *faults.Plan {
	t.Helper()
	plan, err := faults.ParseSpec(spec, seed)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	faults.Activate(plan)
	t.Cleanup(faults.Deactivate)
	return plan
}

// TestStoreRestartDurability writes entries through one store handle, drops
// it without Close (the kill -9 analogue for in-process state), reopens the
// directory, and expects every completed write to be served intact.
func TestStoreRestartDurability(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(dir, discard)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		e := testEntry(i%2 == 0)
		e.Key = testKey(byte(i))
		e.Conflicts = int64(i)
		if err := s1.Put(e); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		s1.JournalStart(fmt.Sprintf("j%d", i), e.Key)
	}
	// "Crash": no Close, no journal Done records.

	s2, lost, err := Open(dir, discard)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if len(lost) != n {
		t.Fatalf("recovery reported %d lost jobs, want %d", len(lost), n)
	}
	for i := 0; i < n; i++ {
		got, err := s2.Get(testKey(byte(i)))
		if err != nil || got == nil {
			t.Fatalf("entry %d lost across restart: (%v, %v)", i, got, err)
		}
		if got.Conflicts != int64(i) {
			t.Fatalf("entry %d came back with conflicts %d", i, got.Conflicts)
		}
		if (i%2 == 0) != (got.Cert != nil) {
			t.Fatalf("entry %d certificate presence flipped across restart", i)
		}
	}
}

// TestStoreConcurrentReadersWriters hammers one store from concurrent
// readers, writers, and a verifier under -race. Every Get must return either
// nil or a fully consistent entry for its key.
func TestStoreConcurrentReadersWriters(t *testing.T) {
	leakcheck.Check(t)
	s := openTest(t)
	const keys = 8
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				k := byte(rng.Intn(keys))
				e := testEntry(k%2 == 0)
				e.Key = testKey(k)
				e.Conflicts = int64(k) // key-derived, so any write is consistent
				if err := s.Put(e); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(int64(w))
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 100; i++ {
				k := byte(rng.Intn(keys))
				got, err := s.Get(testKey(k))
				if err != nil {
					t.Errorf("Get: %v", err)
					continue
				}
				if got == nil {
					continue // not written yet
				}
				if got.Conflicts != int64(k) || got.Key != testKey(k) {
					t.Errorf("Get(%d) returned inconsistent entry %+v", k, got)
				}
			}
		}(int64(r))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := s.Verify(); err != nil {
				t.Errorf("Verify: %v", err)
			}
		}
	}()
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 || st.Quarantined != 0 {
		t.Fatalf("clean concurrent traffic produced corruption stats %+v", st)
	}
}

// TestStoreFaultInjectionRead arms store.read with a deterministic error;
// reads degrade to counted misses-with-error, and disarming restores
// service without reopening.
func TestStoreFaultInjectionRead(t *testing.T) {
	s := openTest(t)
	e := testEntry(false)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	withFaults(t, "store.read:error:every=1", 1)
	got, err := s.Get(e.Key)
	if got != nil {
		t.Fatal("injected read error still returned an entry")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("got %v, want injected error", err)
	}
	if st := s.Stats(); st.IOErrors != 1 {
		t.Fatalf("stats %+v, want 1 io error", st)
	}
	faults.Deactivate()
	if got, err := s.Get(e.Key); err != nil || got == nil {
		t.Fatalf("store did not recover after fault cleared: (%v, %v)", got, err)
	}
}

// TestStoreFaultInjectionWrite arms store.write; writes fail gracefully and
// leave any previous entry for the key intact.
func TestStoreFaultInjectionWrite(t *testing.T) {
	s := openTest(t)
	e := testEntry(false)
	e.Verdict = VerdictUnsat
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	withFaults(t, "store.write:error:every=1", 1)
	e2 := testEntry(true)
	if err := s.Put(e2); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Put under injected write fault: %v", err)
	}
	faults.Deactivate()
	got, err := s.Get(e.Key)
	if err != nil || got == nil {
		t.Fatalf("previous entry lost to failed overwrite: (%v, %v)", got, err)
	}
	if got.Verdict != VerdictUnsat || got.Cert != nil {
		t.Fatalf("failed write partially applied: %+v", got)
	}
}

// TestStoreFaultInjectionCorrupt arms store.corrupt: the store flips a real
// bit in the bytes it just read, and the checksum/quarantine machinery must
// catch every single one.
func TestStoreFaultInjectionCorrupt(t *testing.T) {
	s := openTest(t)
	e := testEntry(true)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	withFaults(t, "store.corrupt:error:times=1", 1)
	got, err := s.Get(e.Key)
	if err != nil || got != nil {
		t.Fatalf("bit-flipped read: (%v, %v), want quarantined miss", got, err)
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Quarantined != 1 {
		t.Fatalf("stats %+v, want 1 corrupt / 1 quarantined", st)
	}
	// The rule fired once; the re-written entry reads clean afterwards.
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(e.Key); err != nil || got == nil {
		t.Fatalf("store did not recover after corruption: (%v, %v)", got, err)
	}
}

// TestStoreChaosMixed runs mixed probabilistic disk faults against
// concurrent traffic: whatever the disk does, a Get either misses or
// returns the exact entry written for its key, and the store keeps serving
// after the plan is disarmed.
func TestStoreChaosMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	leakcheck.Check(t)
	s := openTest(t)
	withFaults(t,
		"store.read:error:p=0.2;"+
			"store.write:error:p=0.2;"+
			"store.corrupt:error:p=0.3",
		7)
	const keys = 6
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 80; i++ {
				k := byte(rng.Intn(keys))
				if rng.Intn(2) == 0 {
					e := testEntry(k%2 == 0)
					e.Key = testKey(k)
					e.Conflicts = int64(k)
					s.Put(e) // failures are the point
				} else {
					got, _ := s.Get(testKey(k))
					if got != nil && (got.Conflicts != int64(k) || got.Key != testKey(k)) {
						t.Errorf("chaos Get(%d) returned wrong entry %+v", k, got)
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	faults.Deactivate()
	// Post-chaos: the store still round-trips cleanly.
	e := testEntry(true)
	e.Key = testKey(0xee)
	if err := s.Put(e); err != nil {
		t.Fatalf("post-chaos Put: %v", err)
	}
	if got, err := s.Get(e.Key); err != nil || got == nil {
		t.Fatalf("post-chaos Get: (%v, %v)", got, err)
	}
	// Quarantine dir holds only entries the corrupt rule actually hit, and
	// each has a reason note.
	if _, err := s.Verify(); err != nil {
		t.Fatalf("post-chaos Verify: %v", err)
	}
}

// TestStorePersistsAcrossOsRemoveTmp removes the tmp dir mid-flight to force
// a write error path through writeAtomic.
func TestStorePersistsAcrossOsRemoveTmp(t *testing.T) {
	s := openTest(t)
	os.RemoveAll(s.dir) // yank the whole store out from under the handle
	e := testEntry(false)
	if err := s.Put(e); err == nil {
		t.Fatal("Put into a removed directory succeeded")
	}
	if got, err := s.Get(e.Key); got != nil {
		t.Fatalf("Get from a removed directory returned (%v, %v)", got, err)
	}
	if st := s.Stats(); st.IOErrors == 0 {
		t.Fatalf("stats %+v, want io errors counted", st)
	}
}
