package store

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/aig"
	"repro/internal/cert"
	"repro/internal/cnf"
)

// Binary entry layout (all integers little-endian):
//
//	[0:4]   magic "DQST"
//	[4:6]   format version (currently 1)
//	[6:8]   flags (bit 0: entry carries a certificate)
//	[8:12]  payload length in bytes
//	[12:16] reserved (zero)
//	[16:…]  payload (see below)
//	[-4:]   CRC-32C (Castagnoli) over header and payload
//
// Payload:
//
//	key            raw 32-byte canonical formula hash
//	verdict        uint8 (1 = SAT, 2 = UNSAT)
//	engine         uint16 length + bytes
//	conflicts      int64
//	decisions      int64
//	solve time     int64 (milliseconds)
//	created        int64 (unix seconds)
//	certificate    (only with flag bit 0) uint32 function count, then the
//	               existential variable of each function as int32 in
//	               ascending order, then uint32 length + ASCII-AIGER (aag)
//	               bytes holding the function cones, one output per
//	               function in the same order
//
// The checksum makes torn writes and bit flips detectable; the version field
// makes the format evolvable (a reader rejects versions it does not speak,
// without quarantining the file — it is not damaged, just newer). The
// write→read→write fixpoint is tested in the style of gnark's groth16
// marshal round-trip suite.
const (
	entryMagic   = "DQST"
	entryVersion = 1

	flagHasCert = 1 << 0

	headerLen = 16
	// minEntryLen is the smallest structurally possible file: header, raw
	// key, verdict byte, empty engine, four int64 meters, checksum.
	minEntryLen = headerLen + keyRawLen + 1 + 2 + 4*8 + 4
)

// keyRawLen is the byte length of a decoded canonical hash (SHA-256).
const keyRawLen = 32

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Verdict is the persisted answer of an entry. Only definitive verdicts are
// ever stored: Unknown depends on the budget that produced it and Error on
// the failure that did, so neither survives a restart.
type Verdict uint8

const (
	// VerdictSat marks a satisfiable instance.
	VerdictSat Verdict = 1
	// VerdictUnsat marks an unsatisfiable instance.
	VerdictUnsat Verdict = 2
)

func (v Verdict) String() string {
	switch v {
	case VerdictSat:
		return "SAT"
	case VerdictUnsat:
		return "UNSAT"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// Entry is one persisted result: the verdict for the formula with the given
// canonical hash, solver accounting, and — for SAT verdicts of
// certificate-producing engines — the Skolem certificate that makes the
// verdict independently re-checkable on load.
type Entry struct {
	// Key is the hex-encoded canonical formula hash (service.CanonicalHash).
	Key string
	// Verdict is the persisted answer (SAT or UNSAT only).
	Verdict Verdict
	// Engine names the engine that produced the verdict.
	Engine string
	// Conflicts and Decisions are the CDCL totals of the producing solve.
	Conflicts int64
	Decisions int64
	// SolveMS is the wall-clock solve time of the producing run.
	SolveMS int64
	// CreatedUnix is the write time (unix seconds), the input to age-based
	// eviction.
	CreatedUnix int64
	// Cert is the Skolem certificate backing a SAT verdict; nil when the
	// producing engine emitted none (UNSAT always, SAT without -certify).
	Cert *cert.Certificate
}

// Errors distinguishing why an entry failed to decode.
var (
	// ErrCorrupt marks an entry whose bytes fail structural or checksum
	// validation — the read path quarantines such files.
	ErrCorrupt = errors.New("store: corrupt entry")
	// ErrVersion marks an entry written by a different format version — not
	// damaged, just unreadable by this build; it is skipped, not quarantined.
	ErrVersion = errors.New("store: unsupported entry version")
)

// MarshalBinary encodes the entry in the versioned checksummed format.
func (e *Entry) MarshalBinary() ([]byte, error) {
	rawKey, err := hex.DecodeString(e.Key)
	if err != nil || len(rawKey) != keyRawLen {
		return nil, fmt.Errorf("store: key %q is not a %d-byte hex hash", e.Key, keyRawLen)
	}
	if e.Verdict != VerdictSat && e.Verdict != VerdictUnsat {
		return nil, fmt.Errorf("store: refusing to persist non-definitive verdict %v", e.Verdict)
	}
	if len(e.Engine) > 0xffff {
		return nil, fmt.Errorf("store: engine name %d bytes long", len(e.Engine))
	}

	var payload bytes.Buffer
	payload.Write(rawKey)
	payload.WriteByte(byte(e.Verdict))
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(e.Engine)))
	payload.Write(u16[:])
	payload.WriteString(e.Engine)
	var u64 [8]byte
	for _, v := range []int64{e.Conflicts, e.Decisions, e.SolveMS, e.CreatedUnix} {
		binary.LittleEndian.PutUint64(u64[:], uint64(v))
		payload.Write(u64[:])
	}

	flags := uint16(0)
	if e.Cert != nil {
		flags |= flagHasCert
		if err := marshalCert(&payload, e.Cert); err != nil {
			return nil, err
		}
	}

	out := make([]byte, 0, headerLen+payload.Len()+4)
	out = append(out, entryMagic...)
	out = binary.LittleEndian.AppendUint16(out, entryVersion)
	out = binary.LittleEndian.AppendUint16(out, flags)
	out = binary.LittleEndian.AppendUint32(out, uint32(payload.Len()))
	out = binary.LittleEndian.AppendUint32(out, 0) // reserved
	out = append(out, payload.Bytes()...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
	return out, nil
}

// marshalCert appends the certificate section: function variables in
// ascending order, then the cones as one deterministic ASCII-AIGER blob with
// one output per function.
func marshalCert(w *bytes.Buffer, c *cert.Certificate) error {
	if c.G == nil {
		return fmt.Errorf("store: certificate without a graph")
	}
	vars := make([]cnf.Var, 0, len(c.Funcs))
	for v := range c.Funcs {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(vars)))
	w.Write(u32[:])
	outs := make([]aig.Ref, len(vars))
	var i32 [4]byte
	for i, v := range vars {
		binary.LittleEndian.PutUint32(i32[:], uint32(int32(v)))
		w.Write(i32[:])
		outs[i] = c.Funcs[v]
	}

	var aag bytes.Buffer
	if err := c.G.WriteAAG(&aag, outs...); err != nil {
		return fmt.Errorf("store: serializing certificate: %w", err)
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(aag.Len()))
	w.Write(u32[:])
	w.Write(aag.Bytes())
	return nil
}

// UnmarshalBinary decodes an entry, rejecting short reads, bad magic, bad
// checksums, and trailing garbage as ErrCorrupt and unknown format versions
// as ErrVersion.
func (e *Entry) UnmarshalBinary(data []byte) error {
	if len(data) < minEntryLen {
		return fmt.Errorf("%w: %d bytes, want at least %d (short read)", ErrCorrupt, len(data), minEntryLen)
	}
	if string(data[0:4]) != entryMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	// The checksum is validated before the version so a bit flip inside the
	// version field reads as corruption, not as a future format.
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[:len(data)-4], crcTable); got != sum {
		return fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, sum, got)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != entryVersion {
		return fmt.Errorf("%w: version %d (this build speaks %d)", ErrVersion, v, entryVersion)
	}
	flags := binary.LittleEndian.Uint16(data[6:8])
	payloadLen := binary.LittleEndian.Uint32(data[8:12])
	if int(payloadLen) != len(data)-headerLen-4 {
		return fmt.Errorf("%w: payload length %d disagrees with file size %d", ErrCorrupt, payloadLen, len(data))
	}

	r := bytes.NewReader(data[headerLen : len(data)-4])
	rawKey := make([]byte, keyRawLen)
	if _, err := io.ReadFull(r, rawKey); err != nil {
		return fmt.Errorf("%w: truncated key", ErrCorrupt)
	}
	e.Key = hex.EncodeToString(rawKey)

	var verdict [1]byte
	if _, err := io.ReadFull(r, verdict[:]); err != nil {
		return fmt.Errorf("%w: truncated verdict", ErrCorrupt)
	}
	e.Verdict = Verdict(verdict[0])
	if e.Verdict != VerdictSat && e.Verdict != VerdictUnsat {
		return fmt.Errorf("%w: verdict byte %d", ErrCorrupt, verdict[0])
	}

	var u16 [2]byte
	if _, err := io.ReadFull(r, u16[:]); err != nil {
		return fmt.Errorf("%w: truncated engine length", ErrCorrupt)
	}
	engine := make([]byte, binary.LittleEndian.Uint16(u16[:]))
	if _, err := io.ReadFull(r, engine); err != nil {
		return fmt.Errorf("%w: truncated engine name", ErrCorrupt)
	}
	e.Engine = string(engine)

	var u64 [8]byte
	for _, dst := range []*int64{&e.Conflicts, &e.Decisions, &e.SolveMS, &e.CreatedUnix} {
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return fmt.Errorf("%w: truncated meters", ErrCorrupt)
		}
		*dst = int64(binary.LittleEndian.Uint64(u64[:]))
	}

	e.Cert = nil
	if flags&flagHasCert != 0 {
		c, err := unmarshalCert(r)
		if err != nil {
			return err
		}
		e.Cert = c
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return nil
}

func unmarshalCert(r *bytes.Reader) (*cert.Certificate, error) {
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated certificate function count", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	if int(n) > r.Len()/4 {
		return nil, fmt.Errorf("%w: certificate claims %d functions in %d bytes", ErrCorrupt, n, r.Len())
	}
	vars := make([]cnf.Var, n)
	for i := range vars {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated certificate variable list", ErrCorrupt)
		}
		v := cnf.Var(int32(binary.LittleEndian.Uint32(u32[:])))
		if v <= 0 {
			return nil, fmt.Errorf("%w: certificate variable %d", ErrCorrupt, v)
		}
		vars[i] = v
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated certificate blob length", ErrCorrupt)
	}
	blobLen := binary.LittleEndian.Uint32(u32[:])
	if int(blobLen) != r.Len() {
		return nil, fmt.Errorf("%w: certificate blob length %d, %d bytes remain", ErrCorrupt, blobLen, r.Len())
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("%w: truncated certificate blob", ErrCorrupt)
	}
	g, outs, err := aig.ReadAAG(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("%w: certificate AIG: %v", ErrCorrupt, err)
	}
	if len(outs) != len(vars) {
		return nil, fmt.Errorf("%w: certificate has %d cones for %d variables", ErrCorrupt, len(outs), len(vars))
	}
	c := &cert.Certificate{G: g, Funcs: make(map[cnf.Var]aig.Ref, len(vars))}
	for i, v := range vars {
		if _, dup := c.Funcs[v]; dup {
			return nil, fmt.Errorf("%w: duplicate certificate variable %d", ErrCorrupt, v)
		}
		c.Funcs[v] = outs[i]
	}
	return c, nil
}
