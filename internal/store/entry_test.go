package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/aig"
	"repro/internal/cert"
	"repro/internal/cnf"
)

// testKey returns a syntactically valid canonical-hash key derived from b.
func testKey(b byte) string {
	const hexdigits = "0123456789abcdef"
	return strings.Repeat(string([]byte{hexdigits[b>>4&0xf], hexdigits[b&0xf]}), keyRawLen)
}

// testCert builds a small certificate with shared structure, constants, and
// complemented edges — the shapes the AAG blob has to carry.
func testCert() *cert.Certificate {
	g := aig.New()
	x1, x2 := g.Input(1), g.Input(2)
	shared := g.And(x1, x2)
	return &cert.Certificate{G: g, Funcs: map[cnf.Var]aig.Ref{
		5: shared,
		6: g.Or(shared, x1.Not()),
		7: x2.Not(),
		8: aig.False,
		9: aig.True,
	}}
}

func testEntry(withCert bool) *Entry {
	e := &Entry{
		Key:         testKey(0xab),
		Verdict:     VerdictSat,
		Engine:      "hqs",
		Conflicts:   12345,
		Decisions:   67890,
		SolveMS:     42,
		CreatedUnix: 1754600000,
	}
	if withCert {
		e.Cert = testCert()
	}
	return e
}

// TestEntryRoundTripFixpoint is the gnark-marshal-style round-trip: decode
// of an encoding reproduces every field, and re-encoding the decoded entry
// is byte-identical to the first encoding (write→read→write fixpoint).
func TestEntryRoundTripFixpoint(t *testing.T) {
	for _, withCert := range []bool{false, true} {
		e := testEntry(withCert)
		if !withCert {
			e.Verdict = VerdictUnsat
			e.Engine = "portfolio"
		}
		b1, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal (cert=%v): %v", withCert, err)
		}
		var d Entry
		if err := d.UnmarshalBinary(b1); err != nil {
			t.Fatalf("unmarshal (cert=%v): %v", withCert, err)
		}
		if d.Key != e.Key || d.Verdict != e.Verdict || d.Engine != e.Engine ||
			d.Conflicts != e.Conflicts || d.Decisions != e.Decisions ||
			d.SolveMS != e.SolveMS || d.CreatedUnix != e.CreatedUnix {
			t.Fatalf("round-trip changed fields:\n in: %+v\nout: %+v", e, d)
		}
		if withCert {
			if d.Cert == nil {
				t.Fatal("certificate lost in round-trip")
			}
			if len(d.Cert.Funcs) != len(e.Cert.Funcs) {
				t.Fatalf("certificate has %d functions, want %d", len(d.Cert.Funcs), len(e.Cert.Funcs))
			}
			// Semantic identity of every function over all 4 assignments of
			// the two inputs.
			for bits := 0; bits < 4; bits++ {
				assign := func(v cnf.Var) bool { return bits&(1<<(v-1)) != 0 }
				for y, fn := range e.Cert.Funcs {
					want := e.Cert.G.Eval(fn, assign)
					got := d.Cert.G.Eval(d.Cert.Funcs[y], assign)
					if got != want {
						t.Fatalf("function %d differs at assignment %02b: got %v want %v", y, bits, got, want)
					}
				}
			}
		} else if d.Cert != nil {
			t.Fatal("certificate materialized from nothing")
		}
		b2, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("write→read→write not a fixpoint (cert=%v): %d vs %d bytes", withCert, len(b1), len(b2))
		}
	}
}

// TestEntryVersionMismatch patches the version field (and repairs the
// checksum, as a legitimate future writer would) and expects ErrVersion —
// not ErrCorrupt, and not a misdecoded entry.
func TestEntryVersionMismatch(t *testing.T) {
	b, err := testEntry(true).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(b[4:6], entryVersion+1)
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], crcTable))
	var d Entry
	if err := d.UnmarshalBinary(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
	// A version flipped by disk corruption (checksum NOT repaired) must read
	// as corruption instead.
	b2, _ := testEntry(true).MarshalBinary()
	binary.LittleEndian.PutUint16(b2[4:6], entryVersion+1)
	if err := d.UnmarshalBinary(b2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped version: got %v, want ErrCorrupt", err)
	}
}

// TestEntryShortRead truncates the encoding at every length and expects a
// rejection each time — a torn write must never decode.
func TestEntryShortRead(t *testing.T) {
	b, err := testEntry(true).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		var d Entry
		if err := d.UnmarshalBinary(b[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(b))
		}
	}
}

// TestEntryBitFlips flips every bit of the encoding one at a time; each
// flipped copy must fail to decode (almost always via the checksum; flips in
// the checksum itself via the recomputation mismatch).
func TestEntryBitFlips(t *testing.T) {
	b, err := testEntry(true).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(b); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), b...)
			mut[i] ^= 1 << bit
			var d Entry
			if err := d.UnmarshalBinary(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, bit)
			}
		}
	}
}

// TestEntryTrailingGarbage appends bytes after the checksum; the payload
// length field must catch it.
func TestEntryTrailingGarbage(t *testing.T) {
	b, err := testEntry(false).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Entry
	if err := d.UnmarshalBinary(append(b, 0xde, 0xad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: got %v, want ErrCorrupt", err)
	}
}

// TestEntryMarshalRejects covers the refuse-to-write guards.
func TestEntryMarshalRejects(t *testing.T) {
	e := testEntry(false)
	e.Key = "not-a-hash"
	if _, err := e.MarshalBinary(); err == nil {
		t.Fatal("bad key marshalled")
	}
	e = testEntry(false)
	e.Verdict = 0
	if _, err := e.MarshalBinary(); err == nil {
		t.Fatal("non-definitive verdict marshalled")
	}
}
