package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// journalName is the append-only in-flight job journal inside the store dir.
const journalName = "journal.log"

// LostJob is one job that was in flight when a previous process died: a
// start record with no matching done record. The daemon reports these at
// startup so operators (and, later, cluster peers) know what was lost —
// the work itself is simply re-solved on the next request.
type LostJob struct {
	// ID is the scheduler job ID of the lost job.
	ID string
	// Key is the canonical formula hash the job was solving.
	Key string
	// StartedUnix is when the job started (unix seconds).
	StartedUnix int64
}

// journal is the append-only in-flight record: one "S" line when a worker
// picks a job up, one "D" line when it finishes. Lines are synced on every
// append — jobs cost SAT solving, one fsync is noise next to that — so a
// kill -9 loses at most the record of the instant it interrupts. A line is
// "S <id> <key> <unix>" or "D <id>".
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

func openJournal(dir string) (*journal, []LostJob, error) {
	path := filepath.Join(dir, journalName)
	lost, err := recoverJournal(path)
	if err != nil {
		return nil, nil, err
	}
	// Recovery consumed the old journal; start a fresh one so lost jobs are
	// reported exactly once and the file cannot grow without bound across
	// restarts.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &journal{f: f, path: path}, lost, nil
}

// recoverJournal reads a previous process's journal and returns its
// unmatched start records. A missing journal means a clean start. Malformed
// lines (a torn final append) are skipped, not fatal: the journal is a
// best-effort flight recorder, never a correctness dependency.
func recoverJournal(path string) ([]LostJob, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	open := make(map[string]LostJob)
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		switch {
		case len(fields) == 4 && fields[0] == "S":
			var started int64
			fmt.Sscanf(fields[3], "%d", &started)
			if _, dup := open[fields[1]]; !dup {
				order = append(order, fields[1])
			}
			open[fields[1]] = LostJob{ID: fields[1], Key: fields[2], StartedUnix: started}
		case len(fields) == 2 && fields[0] == "D":
			delete(open, fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var lost []LostJob
	for _, id := range order {
		if j, ok := open[id]; ok {
			lost = append(lost, j)
		}
	}
	return lost, nil
}

// Start records that job id began solving the formula with the given key.
func (j *journal) Start(id, key string) error {
	return j.append(fmt.Sprintf("S %s %s %d\n", id, key, time.Now().Unix()))
}

// Done records that job id reached a terminal state.
func (j *journal) Done(id string) error {
	return j.append(fmt.Sprintf("D %s\n", id))
}

func (j *journal) append(line string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal closed")
	}
	if _, err := j.f.WriteString(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
