// Package store is the crash-safe persistent result-and-certificate store
// under the solver service: a content-addressed on-disk map from canonical
// formula hashes (service.CanonicalHash) to definitive verdicts, solver
// accounting, and Skolem certificates, plus a small append-only journal of
// in-flight jobs so a killed daemon can report on restart what was lost.
//
// Durability discipline:
//
//   - Entries are written atomically: marshal, write to a temp file in the
//     store's tmp/ directory, fsync, rename into place, fsync the parent
//     directory. A crash leaves either the old state or the new state,
//     never a torn entry under the content-addressed name.
//   - Every entry carries a versioned binary header and a CRC-32C trailer
//     (see entry.go). A torn write, truncation, or bit flip fails the
//     checksum; the file is moved to the quarantine/ sidecar directory with
//     a .reason note and the read reports a miss — never a wrong answer.
//   - Certificates are NOT trusted on load just because the checksum holds:
//     the service re-verifies them against the formula via internal/cert
//     before serving the verdict, and hands rejects back to RejectCert.
//   - Every I/O failure degrades gracefully: it is logged, counted, and
//     reported to the caller as a miss or failed write — the daemon solves
//     in memory instead. The store is an accelerator, never a point of
//     failure.
//
// The store.read, store.write, and store.corrupt fault points (internal/
// faults) inject disk failures and real bit flips into these paths for the
// chaos suite.
package store

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// Subdirectories of a store root.
const (
	entriesDir    = "entries"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"
	entrySuffix   = ".entry"
)

// Stats are the store's operation counters, shaped for JSON embedding in the
// daemon's /stats payload.
type Stats struct {
	// Hits counts reads that returned a decodable entry.
	Hits int64 `json:"hits"`
	// Misses counts reads of absent keys.
	Misses int64 `json:"misses"`
	// Writes counts entries durably written.
	Writes int64 `json:"writes"`
	// Corrupt counts entries that failed checksum or structural validation
	// on read (each is quarantined).
	Corrupt int64 `json:"corrupt"`
	// Quarantined counts files moved to the quarantine sidecar, corrupt and
	// certificate-rejected alike.
	Quarantined int64 `json:"quarantined"`
	// CertRejected counts entries whose Skolem certificate failed
	// re-verification on load (each is quarantined).
	CertRejected int64 `json:"cert_rejected"`
	// IOErrors counts read/write/journal failures that degraded to a miss
	// or a lost write.
	IOErrors int64 `json:"io_errors"`
	// VersionSkips counts entries written by an unknown format version,
	// skipped without quarantine.
	VersionSkips int64 `json:"version_skips"`
}

// Store is a content-addressed on-disk result store rooted at one
// directory. All methods are safe for concurrent use; distinct keys never
// contend, and writes to the same key last-writer-win atomically.
type Store struct {
	dir     string
	journal *journal
	logf    func(format string, args ...any)

	hits         atomic.Int64
	misses       atomic.Int64
	writes       atomic.Int64
	corrupt      atomic.Int64
	quarantined  atomic.Int64
	certRejected atomic.Int64
	ioErrors     atomic.Int64
	versionSkips atomic.Int64
}

// Options tune Open.
type Options struct {
	// Logf receives one line per degraded operation (corrupt entry, I/O
	// error, quarantine); nil means the standard logger.
	Logf func(format string, args ...any)
}

// Open opens (creating if necessary) the store rooted at dir and replays the
// previous process's journal: the returned LostJobs are the jobs that were
// in flight when that process died. Open never fails because of individual
// damaged entries — those are quarantined lazily on read.
func Open(dir string, opts ...Options) (*Store, []LostJob, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.Logf == nil {
		opt.Logf = log.Printf
	}
	for _, sub := range []string{entriesDir, quarantineDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, fmt.Errorf("store: creating %s: %w", sub, err)
		}
	}
	// Stray temp files are debris of writes a crash interrupted before the
	// rename; they were never visible and are safe to discard.
	if strays, err := filepath.Glob(filepath.Join(dir, tmpDir, "*")); err == nil {
		for _, p := range strays {
			os.Remove(p)
		}
	}
	j, lost, err := openJournal(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening journal: %w", err)
	}
	return &Store{dir: dir, journal: j, logf: opt.Logf}, lost, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the journal. Entry files need no teardown — every write
// was already durable when Put returned.
func (s *Store) Close() error {
	return s.journal.Close()
}

// entryPath shards entries by the first two hex digits of the key so no
// single directory accumulates millions of files.
func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, entriesDir, key[:2], key+entrySuffix)
}

func validKey(key string) error {
	if len(key) != 2*keyRawLen {
		return fmt.Errorf("store: key %q is not a %d-char hex hash", key, 2*keyRawLen)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: key %q is not lowercase hex", key)
		}
	}
	return nil
}

// Get returns the entry stored under key, nil when the store has none. Any
// failure mode degrades to a miss: an I/O error returns (nil, err) after
// counting and logging so the caller can fall back to solving in memory; a
// corrupt entry is quarantined and reported as a plain miss; an entry from
// an unknown format version is skipped. Get never returns a wrong answer —
// the worst outcome of any disk state is re-solving.
func (s *Store) Get(key string) (*Entry, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	if err := faults.Fire(faults.StoreRead); err != nil {
		s.ioErrors.Add(1)
		s.logf("store: read %s: %v (degrading to miss)", key[:12], err)
		return nil, err
	}
	data, err := os.ReadFile(s.entryPath(key))
	if os.IsNotExist(err) {
		s.misses.Add(1)
		return nil, nil
	}
	if err != nil {
		s.ioErrors.Add(1)
		s.logf("store: read %s: %v (degrading to miss)", key[:12], err)
		return nil, err
	}
	// Chaos seam: a firing store.corrupt rule flips a real bit in the bytes
	// just read, so the checksum/quarantine machinery below runs against
	// genuine corruption rather than a simulated flag.
	if err := faults.Fire(faults.StoreCorrupt); err != nil && len(data) > 0 {
		data[len(data)/2] ^= 0x04
	}

	var e Entry
	switch err := e.UnmarshalBinary(data); {
	case err == nil:
	case errors.Is(err, ErrVersion):
		s.versionSkips.Add(1)
		s.logf("store: entry %s: %v (skipping)", key[:12], err)
		return nil, nil
	default:
		s.corrupt.Add(1)
		s.quarantine(key, err.Error())
		return nil, nil
	}
	if e.Key != key {
		// The file decodes but claims another hash: content addressing was
		// violated (misplaced file, collision in the making) — quarantine.
		s.corrupt.Add(1)
		s.quarantine(key, fmt.Sprintf("key mismatch: file claims %s", e.Key))
		return nil, nil
	}
	s.hits.Add(1)
	return &e, nil
}

// Put durably stores e under its key: temp file, fsync, rename, directory
// fsync. A failure is counted and logged and the store is left without the
// new entry (the previous entry for the key, if any, survives intact).
func (s *Store) Put(e *Entry) error {
	if err := validKey(e.Key); err != nil {
		return err
	}
	if err := faults.Fire(faults.StoreWrite); err != nil {
		s.ioErrors.Add(1)
		s.logf("store: write %s: %v (result not persisted)", e.Key[:12], err)
		return err
	}
	data, err := e.MarshalBinary()
	if err != nil {
		s.ioErrors.Add(1)
		s.logf("store: encode %s: %v", e.Key[:12], err)
		return err
	}
	if err := s.writeAtomic(s.entryPath(e.Key), data); err != nil {
		s.ioErrors.Add(1)
		s.logf("store: write %s: %v (result not persisted)", e.Key[:12], err)
		return err
	}
	s.writes.Add(1)
	return nil
}

// writeAtomic lands data at path via the temp-fsync-rename-dirsync dance.
func (s *Store) writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), "put-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best effort: some filesystems refuse directory fsync, and losing the
// rename on power cut only costs a re-solve.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// RejectCert quarantines the entry under key because its Skolem certificate
// failed re-verification against the formula. The caller (the service's
// store tier) runs the checker — it has the formula; the store only files
// the evidence.
func (s *Store) RejectCert(key string, reason error) {
	if validKey(key) != nil {
		return
	}
	s.certRejected.Add(1)
	s.quarantine(key, fmt.Sprintf("certificate rejected: %v", reason))
}

// quarantine moves the entry file for key into the quarantine sidecar
// directory under a unique name and drops a .reason note beside it. The
// original content-addressed slot becomes free, so the next solve of the
// formula repopulates it with a fresh entry.
func (s *Store) quarantine(key, reason string) {
	dst := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s.%d%s", key, time.Now().UnixNano(), entrySuffix))
	if err := os.Rename(s.entryPath(key), dst); err != nil {
		// The file may already be gone (a racing reader quarantined it
		// first); anything else is an I/O error worth counting.
		if !os.IsNotExist(err) {
			s.ioErrors.Add(1)
			s.logf("store: quarantining %s: %v", key[:12], err)
		}
		return
	}
	s.quarantined.Add(1)
	s.logf("store: quarantined entry %s: %s", key[:12], reason)
	os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	syncDir(filepath.Dir(dst))
}

// JournalStart records that job id began solving key; JournalDone closes the
// record. Failures degrade to a counted, logged no-op — the journal is a
// flight recorder, not a correctness dependency.
func (s *Store) JournalStart(id, key string) {
	if err := s.journal.Start(id, key); err != nil {
		s.ioErrors.Add(1)
		s.logf("store: journal start %s: %v", id, err)
	}
}

// JournalDone records that job id finished.
func (s *Store) JournalDone(id string) {
	if err := s.journal.Done(id); err != nil {
		s.ioErrors.Add(1)
		s.logf("store: journal done %s: %v", id, err)
	}
}

// Stats snapshots the operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Writes:       s.writes.Load(),
		Corrupt:      s.corrupt.Load(),
		Quarantined:  s.quarantined.Load(),
		CertRejected: s.certRejected.Load(),
		IOErrors:     s.ioErrors.Load(),
		VersionSkips: s.versionSkips.Load(),
	}
}

// DiskStats describe what is on disk, independent of this process's
// operation counters (dqbfstore stats).
type DiskStats struct {
	Entries          int   `json:"entries"`
	EntryBytes       int64 `json:"entry_bytes"`
	Quarantined      int   `json:"quarantined"`
	QuarantineBytes  int64 `json:"quarantine_bytes"`
	WithCertificates int   `json:"with_certificates"`
}

// Scan walks the store and returns disk-level statistics. Entries are
// decoded to count certificates; undecodable files count as entries but not
// certificates (Verify is the pass that acts on them).
func (s *Store) Scan() (DiskStats, error) {
	var ds DiskStats
	err := s.walkEntries(func(key, path string, info os.FileInfo) error {
		ds.Entries++
		ds.EntryBytes += info.Size()
		if data, err := os.ReadFile(path); err == nil {
			var e Entry
			if e.UnmarshalBinary(data) == nil && e.Cert != nil {
				ds.WithCertificates++
			}
		}
		return nil
	})
	if err != nil {
		return ds, err
	}
	qfiles, _ := filepath.Glob(filepath.Join(s.dir, quarantineDir, "*"+entrySuffix))
	for _, p := range qfiles {
		if info, err := os.Stat(p); err == nil {
			ds.Quarantined++
			ds.QuarantineBytes += info.Size()
		}
	}
	return ds, nil
}

// walkEntries visits every entry file under entries/ in sorted key order.
func (s *Store) walkEntries(visit func(key, path string, info os.FileInfo) error) error {
	root := filepath.Join(s.dir, entriesDir)
	var paths []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, entrySuffix) {
			return err
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		key := strings.TrimSuffix(filepath.Base(path), entrySuffix)
		if validKey(key) != nil {
			continue
		}
		info, err := os.Stat(path)
		if err != nil {
			continue
		}
		if err := visit(key, path, info); err != nil {
			return err
		}
	}
	return nil
}

// VerifyResult summarizes a Verify pass.
type VerifyResult struct {
	// Checked is the number of entries visited.
	Checked int `json:"checked"`
	// OK is the number that decoded and checksummed clean.
	OK int `json:"ok"`
	// Quarantined is the number moved to quarantine for failing validation.
	Quarantined int `json:"quarantined"`
	// VersionSkips is the number skipped for an unknown format version.
	VersionSkips int `json:"version_skips"`
}

// Verify walks every entry, validates checksum and structure, and
// quarantines the ones that fail — the offline scrub behind
// `dqbfstore verify`. Certificate re-verification against formulas is not
// possible here (the store holds hashes, not formulas); it happens online
// when a lookup hits the entry.
func (s *Store) Verify() (VerifyResult, error) {
	var res VerifyResult
	err := s.walkEntries(func(key, path string, _ os.FileInfo) error {
		res.Checked++
		data, err := os.ReadFile(path)
		if err != nil {
			s.ioErrors.Add(1)
			s.logf("store: verify %s: %v", key[:12], err)
			return nil
		}
		var e Entry
		switch err := e.UnmarshalBinary(data); {
		case err == nil && e.Key == key:
			res.OK++
		case errors.Is(err, ErrVersion):
			res.VersionSkips++
			s.versionSkips.Add(1)
		case err == nil:
			res.Quarantined++
			s.corrupt.Add(1)
			s.quarantine(key, fmt.Sprintf("key mismatch: file claims %s", e.Key))
		default:
			res.Quarantined++
			s.corrupt.Add(1)
			s.quarantine(key, err.Error())
		}
		return nil
	})
	return res, err
}

// EvictOlderThan removes entries whose creation time is before cutoff and
// returns how many were removed — age-based retention for `dqbfstore evict`.
// Entries that fail to decode are left for Verify to quarantine.
func (s *Store) EvictOlderThan(cutoff time.Time) (int, error) {
	evicted := 0
	err := s.walkEntries(func(key, path string, _ os.FileInfo) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		var e Entry
		if e.UnmarshalBinary(data) != nil {
			return nil
		}
		if time.Unix(e.CreatedUnix, 0).Before(cutoff) {
			if err := os.Remove(path); err == nil {
				evicted++
			}
		}
		return nil
	})
	return evicted, err
}

// Compact removes debris: stray temp files, quarantined files (their
// evidence having been inspected or expired), and empty shard directories.
// It returns how many files were removed.
func (s *Store) Compact() (int, error) {
	removed := 0
	for _, pattern := range []string{
		filepath.Join(s.dir, tmpDir, "*"),
		filepath.Join(s.dir, quarantineDir, "*"),
	} {
		files, err := filepath.Glob(pattern)
		if err != nil {
			continue
		}
		for _, p := range files {
			if os.Remove(p) == nil {
				removed++
			}
		}
	}
	shards, _ := filepath.Glob(filepath.Join(s.dir, entriesDir, "*"))
	for _, shard := range shards {
		os.Remove(shard) // fails (and is kept) unless empty
	}
	return removed, nil
}

// Len returns the number of entries on disk (a directory walk; meant for
// stats endpoints and tests, not hot paths).
func (s *Store) Len() int {
	n := 0
	s.walkEntries(func(string, string, os.FileInfo) error { n++; return nil })
	return n
}
