package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// discard silences the degradation log in tests that corrupt on purpose.
var discard = Options{Logf: func(string, ...any) {}}

func openTest(t *testing.T) *Store {
	t.Helper()
	s, lost, err := Open(t.TempDir(), discard)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(lost) != 0 {
		t.Fatalf("fresh store reports %d lost jobs", len(lost))
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStorePutGet is the basic durable round-trip, with a goroutine-leak
// check over open/put/get/close (the satellite requirement: a store must not
// spawn anything that outlives it).
func TestStorePutGet(t *testing.T) {
	leakcheck.Check(t)
	s := openTest(t)

	e := testEntry(true)
	if err := s.Put(e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(e.Key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got == nil {
		t.Fatal("Get missed a just-written entry")
	}
	if got.Verdict != e.Verdict || got.Engine != e.Engine || got.Cert == nil {
		t.Fatalf("Get returned %+v", got)
	}
	if miss, err := s.Get(testKey(0x01)); err != nil || miss != nil {
		t.Fatalf("absent key: got (%v, %v), want (nil, nil)", miss, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 write", st)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestStoreOverwrite checks last-writer-wins semantics under the same key.
func TestStoreOverwrite(t *testing.T) {
	s := openTest(t)
	e := testEntry(false)
	e.Verdict = VerdictUnsat
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	e2 := testEntry(true)
	e2.Engine = "defex"
	if err := s.Put(e2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(e.Key)
	if err != nil || got == nil {
		t.Fatalf("Get: (%v, %v)", got, err)
	}
	if got.Engine != "defex" || got.Cert == nil {
		t.Fatalf("overwrite did not win: %+v", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", s.Len())
	}
}

// TestStoreQuarantineOnCorruption damages an entry on disk in several ways;
// every Get must degrade to a miss and move the file into quarantine with a
// reason note — never return a wrong or partial answer.
func TestStoreQuarantineOnCorruption(t *testing.T) {
	corruptions := map[string]func(path string) error{
		"bit-flip": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)/3] ^= 0x10
			return os.WriteFile(path, data, 0o644)
		},
		"truncate": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)*2/3], 0o644)
		},
		"empty": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte(strings.Repeat("junk", 100)), 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := openTest(t)
			e := testEntry(true)
			if err := s.Put(e); err != nil {
				t.Fatal(err)
			}
			if err := corrupt(s.entryPath(e.Key)); err != nil {
				t.Fatalf("corrupting: %v", err)
			}
			got, err := s.Get(e.Key)
			if err != nil || got != nil {
				t.Fatalf("corrupt entry: got (%v, %v), want quarantined miss", got, err)
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Quarantined != 1 {
				t.Fatalf("stats %+v, want 1 corrupt / 1 quarantined", st)
			}
			q, _ := filepath.Glob(filepath.Join(s.dir, quarantineDir, e.Key+".*"+entrySuffix))
			if len(q) != 1 {
				t.Fatalf("quarantine holds %d files for the key, want 1", len(q))
			}
			if _, err := os.Stat(q[0] + ".reason"); err != nil {
				t.Errorf("no reason note beside %s", q[0])
			}
			// The content-addressed slot is free again: a rewrite works.
			if err := s.Put(e); err != nil {
				t.Fatalf("re-Put after quarantine: %v", err)
			}
			if got, err := s.Get(e.Key); err != nil || got == nil {
				t.Fatalf("re-Get after quarantine: (%v, %v)", got, err)
			}
		})
	}
}

// TestStoreKeyMismatchQuarantined plants a valid entry file under the wrong
// content-addressed name; the store must refuse to serve it.
func TestStoreKeyMismatchQuarantined(t *testing.T) {
	s := openTest(t)
	e := testEntry(false)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	other := testKey(0x11)
	data, _ := os.ReadFile(s.entryPath(e.Key))
	os.MkdirAll(filepath.Dir(s.entryPath(other)), 0o755)
	os.WriteFile(s.entryPath(other), data, 0o644)
	got, err := s.Get(other)
	if err != nil || got != nil {
		t.Fatalf("misplaced entry served: (%v, %v)", got, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v, want 1 quarantined", st)
	}
}

// TestStoreVersionSkipNotQuarantined rewrites an entry as a future format
// version (checksum intact); the store must skip it without quarantining —
// the file is not damaged, this build just cannot read it.
func TestStoreVersionSkipNotQuarantined(t *testing.T) {
	s := openTest(t)
	e := testEntry(false)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	path := s.entryPath(e.Key)
	data, _ := os.ReadFile(path)
	data[4] = entryVersion + 1
	fixCRC(data)
	os.WriteFile(path, data, 0o644)

	got, err := s.Get(e.Key)
	if err != nil || got != nil {
		t.Fatalf("future-version entry: (%v, %v), want skip", got, err)
	}
	st := s.Stats()
	if st.VersionSkips != 1 || st.Quarantined != 0 {
		t.Fatalf("stats %+v, want 1 version skip and 0 quarantined", st)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("future-version entry was removed")
	}
}

// TestStoreJournalRecovery simulates a crash: a second Open on the same
// directory (without Close — the file handle of a kill -9'd process does not
// run cleanup either) must report exactly the jobs with unmatched starts,
// and a third Open reports none.
func TestStoreJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, lost, err := Open(dir, discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("fresh open: %d lost jobs", len(lost))
	}
	s1.JournalStart("j1", testKey(0x01))
	s1.JournalStart("j2", testKey(0x02))
	s1.JournalStart("j3", testKey(0x03))
	s1.JournalDone("j2")
	// No Close: the process "dies" here.

	s2, lost, err := Open(dir, discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 2 || lost[0].ID != "j1" || lost[1].ID != "j3" {
		t.Fatalf("recovery reported %+v, want j1 and j3", lost)
	}
	if lost[0].Key != testKey(0x01) {
		t.Fatalf("lost job j1 has key %s", lost[0].Key)
	}
	s2.Close()

	_, lost, err = Open(dir, discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("third open still reports %d lost jobs (journal not rotated)", len(lost))
	}
}

// TestStoreJournalTornTail appends a torn partial line to the journal; the
// next open must still recover the intact records.
func TestStoreJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(dir, discard)
	if err != nil {
		t.Fatal(err)
	}
	s1.JournalStart("j1", testKey(0x01))
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("S j2 abc") // torn mid-append
	f.Close()

	_, lost, err := Open(dir, discard)
	if err != nil {
		t.Fatalf("open over torn journal: %v", err)
	}
	if len(lost) != 1 || lost[0].ID != "j1" {
		t.Fatalf("recovered %+v, want exactly j1", lost)
	}
}

// TestStoreVerifyEvictCompact exercises the maintenance surface behind the
// dqbfstore tool.
func TestStoreVerifyEvictCompact(t *testing.T) {
	s := openTest(t)
	old := testEntry(false)
	old.CreatedUnix = time.Now().Add(-48 * time.Hour).Unix()
	if err := s.Put(old); err != nil {
		t.Fatal(err)
	}
	fresh := testEntry(true)
	fresh.Key = testKey(0x22)
	fresh.CreatedUnix = time.Now().Unix()
	if err := s.Put(fresh); err != nil {
		t.Fatal(err)
	}
	bad := testEntry(false)
	bad.Key = testKey(0x33)
	if err := s.Put(bad); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(s.entryPath(bad.Key))
	data[len(data)-1] ^= 0xff
	os.WriteFile(s.entryPath(bad.Key), data, 0o644)

	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Checked != 3 || res.OK != 2 || res.Quarantined != 1 {
		t.Fatalf("Verify = %+v, want 3 checked / 2 ok / 1 quarantined", res)
	}

	ds, err := s.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if ds.Entries != 2 || ds.Quarantined != 1 || ds.WithCertificates != 1 {
		t.Fatalf("Scan = %+v", ds)
	}

	evicted, err := s.EvictOlderThan(time.Now().Add(-24 * time.Hour))
	if err != nil || evicted != 1 {
		t.Fatalf("EvictOlderThan = (%d, %v), want (1, nil)", evicted, err)
	}
	if got, _ := s.Get(old.Key); got != nil {
		t.Fatal("evicted entry still served")
	}
	if got, _ := s.Get(fresh.Key); got == nil {
		t.Fatal("fresh entry evicted")
	}

	removed, err := s.Compact()
	if err != nil || removed < 1 {
		t.Fatalf("Compact = (%d, %v), want the quarantined files gone", removed, err)
	}
	if ds, _ := s.Scan(); ds.Quarantined != 0 {
		t.Fatalf("quarantine not emptied: %+v", ds)
	}
}

// fixCRC recomputes the trailing checksum after a deliberate mutation.
func fixCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[len(data)-4:],
		crc32.Checksum(data[:len(data)-4], crcTable))
}
