// Package trace defines the structured per-pass observability events of the
// solver pipeline. Every executed pipeline pass (see internal/pipeline)
// produces exactly one Event carrying its wall time, the AIG-size and
// prefix-size deltas it caused, and pass-specific counters; a Sink decides
// what happens to the stream — record it for a job history, stream it as
// JSONL, or drop it.
//
// The package is deliberately free of solver dependencies so every layer
// (cmd flags, the HTTP daemon, the bench harness) can consume traces without
// importing the cores.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event describes one executed pipeline pass.
type Event struct {
	// Seq numbers events within one stream, assigned by the sink (1-based).
	Seq int `json:"seq,omitempty"`
	// Stage names the pipeline the pass ran in ("hqs" for the DQBF main
	// pipeline, "qbf" for the back end's block-elimination pipeline).
	Stage string `json:"stage"`
	// Pass is the registered pass name (e.g. "unitpure", "thm1").
	Pass string `json:"pass"`
	// Wall is the pass execution time.
	Wall time.Duration `json:"wall_ns"`
	// NodesBefore and NodesAfter are the AIG node counts around the pass.
	NodesBefore int `json:"nodes_before"`
	NodesAfter  int `json:"nodes_after"`
	// UnivBefore/ExistBefore and UnivAfter/ExistAfter are the prefix sizes
	// around the pass.
	UnivBefore  int `json:"univ_before"`
	UnivAfter   int `json:"univ_after"`
	ExistBefore int `json:"exist_before"`
	ExistAfter  int `json:"exist_after"`
	// Changed reports whether the pass modified the state.
	Changed bool `json:"changed"`
	// Counters are pass-specific counters (elimination counts, sweep merges,
	// ...). Keys are stable per pass; values are cumulative for this one
	// execution only.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Err carries the pass error, if any (budget stops included).
	Err string `json:"err,omitempty"`
}

// Sink consumes a stream of events. Implementations must be safe for
// concurrent use: portfolio arms and parallel pipelines may share one sink.
type Sink interface {
	Emit(Event)
}

// Recorder is a bounded, concurrency-safe Sink that retains events in
// arrival order. Once the bound is reached further events are counted but
// dropped, so a pathological solve cannot hold the job history hostage.
type Recorder struct {
	mu      sync.Mutex
	max     int
	seq     int
	events  []Event
	dropped int
}

// NewRecorder returns a recorder retaining at most max events (0 picks the
// default of 4096, negative retains nothing but still counts).
func NewRecorder(max int) *Recorder {
	if max == 0 {
		max = 4096
	}
	return &Recorder{max: max}
}

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	if r.max > 0 && len(r.events) < r.max {
		r.events = append(r.events, ev)
		return
	}
	r.dropped++
}

// Events returns a copy of the retained events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Dropped returns how many events arrived after the retention bound.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Writer is a Sink streaming every event as one JSON line, for
// `hqs -trace-json` and log shipping.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	seq int
	enc *json.Encoder
}

// NewWriter returns a JSONL-streaming sink over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, enc: json.NewEncoder(w)}
}

// Emit implements Sink. Encoding errors are dropped: tracing must never take
// a solve down.
func (t *Writer) Emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	t.enc.Encode(ev)
}

// Multi fans one stream out to several sinks (nil sinks are skipped).
func Multi(sinks ...Sink) Sink {
	var active []Sink
	for _, s := range sinks {
		if s != nil {
			active = append(active, s)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	}
	return multiSink(active)
}

type multiSink []Sink

func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// WriteJSONL writes the events as JSON lines.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// FormatTable renders events as a human-readable table (the `hqs -trace`
// output): one row per pass execution with wall time, node and prefix
// deltas, and the pass counters.
func FormatTable(events []Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %-5s %-12s %12s %18s %14s  %s\n",
		"seq", "stage", "pass", "wall", "nodes", "prefix ∀/∃", "counters")
	b.WriteString(strings.Repeat("-", 92) + "\n")
	for _, ev := range events {
		fmt.Fprintf(&b, "%4d %-5s %-12s %12s %8d→%-8d %6s  %s\n",
			ev.Seq, ev.Stage, ev.Pass, ev.Wall.Round(time.Microsecond),
			ev.NodesBefore, ev.NodesAfter,
			fmt.Sprintf("%d/%d→%d/%d", ev.UnivBefore, ev.ExistBefore, ev.UnivAfter, ev.ExistAfter),
			formatCounters(ev.Counters))
	}
	return b.String()
}

func formatCounters(c map[string]int64) string {
	if len(c) == 0 {
		return ""
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, c[k]))
	}
	return strings.Join(parts, " ")
}

// Summary aggregates a stream by (stage, pass): total wall time, run count,
// and summed counters — the shape the bench ablation tables consume.
type Summary struct {
	Stage    string
	Pass     string
	Runs     int
	Wall     time.Duration
	Counters map[string]int64
}

// Summarize folds events into per-(stage, pass) summaries ordered by
// descending total wall time.
func Summarize(events []Event) []Summary {
	type key struct{ stage, pass string }
	agg := make(map[key]*Summary)
	var order []key
	for _, ev := range events {
		k := key{ev.Stage, ev.Pass}
		s, ok := agg[k]
		if !ok {
			s = &Summary{Stage: ev.Stage, Pass: ev.Pass, Counters: make(map[string]int64)}
			agg[k] = s
			order = append(order, k)
		}
		s.Runs++
		s.Wall += ev.Wall
		for ck, cv := range ev.Counters {
			s.Counters[ck] += cv
		}
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}
