package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{
			Stage: "hqs", Pass: "preprocess", Wall: 3 * time.Millisecond,
			NodesBefore: 0, NodesAfter: 0,
			UnivBefore: 4, UnivAfter: 3, ExistBefore: 5, ExistAfter: 4,
			Changed: true, Counters: map[string]int64{"units": 2, "gates": 1},
		},
		{
			Stage: "hqs", Pass: "unitpure", Wall: 1 * time.Millisecond,
			NodesBefore: 40, NodesAfter: 31,
			UnivBefore: 3, UnivAfter: 3, ExistBefore: 4, ExistAfter: 3,
			Changed: true, Counters: map[string]int64{"units": 1},
		},
		{
			Stage: "qbf", Pass: "blockelim", Wall: 7 * time.Millisecond,
			NodesBefore: 31, NodesAfter: 55,
			UnivBefore: 3, UnivAfter: 2, ExistBefore: 3, ExistAfter: 3,
			Changed: true,
		},
		{
			Stage: "qbf", Pass: "blockelim", Wall: 2 * time.Millisecond,
			NodesBefore: 55, NodesAfter: 20,
			UnivBefore: 2, UnivAfter: 2, ExistBefore: 3, ExistAfter: 2,
			Changed: true, Err: "pipeline: cancelled",
		},
	}
}

func TestRecorderBoundAndSeq(t *testing.T) {
	r := NewRecorder(2)
	for _, ev := range sampleEvents() {
		r.Emit(ev)
	}
	if r.Len() != 2 {
		t.Fatalf("retained %d events, want 2", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped %d events, want 2", r.Dropped())
	}
	evs := r.Events()
	// Seq keeps counting across drops, and retained events carry 1, 2.
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seq %d, %d; want 1, 2", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Pass != "preprocess" || evs[1].Pass != "unitpure" {
		t.Fatalf("wrong retention order: %s, %s", evs[0].Pass, evs[1].Pass)
	}
}

func TestRecorderNegativeRetainsNothing(t *testing.T) {
	r := NewRecorder(-1)
	for _, ev := range sampleEvents() {
		r.Emit(ev)
	}
	if r.Len() != 0 || r.Dropped() != 4 {
		t.Fatalf("len %d dropped %d, want 0 and 4", r.Len(), r.Dropped())
	}
}

func TestRecorderDefaultBound(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 5000; i++ {
		r.Emit(Event{Stage: "hqs", Pass: "unitpure"})
	}
	if r.Len() != 4096 || r.Dropped() != 5000-4096 {
		t.Fatalf("len %d dropped %d, want 4096 and %d", r.Len(), r.Dropped(), 5000-4096)
	}
}

// TestWriterJSONLRoundTrip streams events through the Writer and decodes
// them back; every field must survive, with Seq assigned by the sink.
func TestWriterJSONLRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	in := sampleEvents()
	for _, ev := range in {
		w.Emit(ev)
	}
	var got []Event
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(got), len(in))
	}
	for i, ev := range got {
		want := in[i]
		want.Seq = i + 1
		if ev.Stage != want.Stage || ev.Pass != want.Pass || ev.Wall != want.Wall ||
			ev.NodesBefore != want.NodesBefore || ev.NodesAfter != want.NodesAfter ||
			ev.UnivBefore != want.UnivBefore || ev.UnivAfter != want.UnivAfter ||
			ev.ExistBefore != want.ExistBefore || ev.ExistAfter != want.ExistAfter ||
			ev.Changed != want.Changed || ev.Err != want.Err || ev.Seq != want.Seq {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, ev, want)
		}
		for k, v := range want.Counters {
			if ev.Counters[k] != v {
				t.Fatalf("event %d counter %s: got %d want %d", i, k, ev.Counters[k], v)
			}
		}
	}
}

// TestWriteJSONLMatchesWriter checks the batch writer agrees with the
// streaming sink on pre-sequenced events.
func TestWriteJSONLMatchesWriter(t *testing.T) {
	evs := sampleEvents()
	for i := range evs {
		evs[i].Seq = i + 1
	}
	var batch strings.Builder
	if err := WriteJSONL(&batch, evs); err != nil {
		t.Fatal(err)
	}
	var stream strings.Builder
	w := NewWriter(&stream)
	for _, ev := range sampleEvents() {
		w.Emit(ev)
	}
	if batch.String() != stream.String() {
		t.Fatalf("batch and streaming JSONL diverge:\n--- batch ---\n%s--- stream ---\n%s",
			batch.String(), stream.String())
	}
}

func TestMultiSkipsNil(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi must collapse to nil")
	}
	r := NewRecorder(8)
	if Multi(nil, r, nil) != Sink(r) {
		t.Fatal("single-sink Multi must return the sink itself")
	}
	r2 := NewRecorder(8)
	m := Multi(r, nil, r2)
	m.Emit(Event{Stage: "hqs", Pass: "build"})
	if r.Len() != 1 || r2.Len() != 1 {
		t.Fatalf("fan-out lost events: %d, %d", r.Len(), r2.Len())
	}
}

func TestFormatTable(t *testing.T) {
	evs := sampleEvents()
	for i := range evs {
		evs[i].Seq = i + 1
	}
	got := FormatTable(evs)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	// Header + rule + one row per event.
	if len(lines) != 2+len(evs) {
		t.Fatalf("table has %d lines, want %d:\n%s", len(lines), 2+len(evs), got)
	}
	for _, want := range []string{"preprocess", "blockelim", "gates=1 units=2", "40→31", "3/4→3/3"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table lacks %q:\n%s", want, got)
		}
	}
	// Counters render in sorted key order.
	if strings.Contains(got, "units=2 gates=1") {
		t.Fatalf("counters not sorted:\n%s", got)
	}
}

func TestSummarizeAggregatesAndOrders(t *testing.T) {
	s := Summarize(sampleEvents())
	if len(s) != 3 {
		t.Fatalf("%d summaries, want 3", len(s))
	}
	// blockelim ran twice for 9ms total — it must lead the descending order.
	if s[0].Pass != "blockelim" || s[0].Runs != 2 || s[0].Wall != 9*time.Millisecond {
		t.Fatalf("head summary %+v, want blockelim x2 @9ms", s[0])
	}
	if s[1].Pass != "preprocess" || s[2].Pass != "unitpure" {
		t.Fatalf("order %s, %s; want preprocess, unitpure", s[1].Pass, s[2].Pass)
	}
	if s[1].Counters["units"] != 2 || s[2].Counters["units"] != 1 {
		t.Fatalf("counters not aggregated per pass: %+v %+v", s[1].Counters, s[2].Counters)
	}
	if Summarize(nil) != nil && len(Summarize(nil)) != 0 {
		t.Fatal("empty input must summarize to empty")
	}
}
